package matrix

import (
	"fmt"
	"math"
	"sync"
)

// This file is the packed, register-blocked GEMM compute layer: the one hot
// loop every kernel in the repository — serial replays, distributed engine
// updates, blocked factorizations — bottoms out in.
//
// The structure is the classic three-level cache blocking (Goto/BLIS):
//
//	for jc over N in steps of gemmNC        C column slab
//	  for pc over K in steps of gemmKC      pack B(pc:pc+kc, jc:jc+nc)
//	    for ic over M in steps of gemmMC    pack alpha·A(ic:ic+mc, pc:pc+kc)
//	      macro kernel: gemmMR×gemmNR register tiles over the packed panels
//
// A is packed into row panels of gemmMR rows (k-major, so the micro-kernel
// streams it sequentially) with alpha folded in during packing; B is packed
// into column panels of gemmNR columns. The packed A block (mc×kc) is sized
// for L2, one packed B column panel (kc×nr) for L1.
//
// Determinism contract: for every output element C[i,j] the products
// alpha·A[i,k]·B[k,j] are accumulated in strictly increasing k order, each as
// a separate rounded multiply and a separate rounded add onto an accumulator
// initialized from C[i,j] — exactly the operation sequence of the scalar
// reference AddMulScalar. The packed path is therefore bit-identical to the
// scalar path for all inputs (including ±0, ±Inf, and whether an output is
// NaN), which is what lets the distributed engine stay bit-identical to the
// serial replays while routing through this kernel. The sole caveat is NaN
// payloads: when two distinct NaNs meet in an add, x86 keeps the first
// source operand's payload, and operand order is compiler codegen — so
// which quiet-NaN bit pattern appears in a NaN output may differ between
// kernels, while NaN-ness itself never does. Property tests assert the
// equivalence over randomized shapes; do not reassociate the accumulation
// when tuning.

// Cache / register blocking parameters. gemmMR×gemmNR is the register tile;
// gemmKC×gemmNR (one packed B panel) should fit L1 and gemmMC×gemmKC (the
// packed A block) L2. The defaults favour the common 256 KB–1 MB L2 parts;
// see DESIGN.md §7 for how to re-derive them for other hardware.
const (
	gemmMR = 4
	gemmNR = 4
	gemmKC = 256
	gemmMC = 128
	gemmNC = 1024
	// gemmNRAVX is the B panel width the AVX assembly micro-kernel consumes
	// (see gemm_amd64.s); the driver packs for it when the CPU qualifies.
	gemmNRAVX = 8
	// gemmMRFMA×gemmNRFMA is the Fast-mode register tile consumed by the
	// fused AVX2+FMA micro-kernel: 6×8 is the widest tile that fits the VEX
	// register budget (12 YMM accumulators + 2 B loads + 2 broadcasts).
	gemmMRFMA = 6
	gemmNRFMA = 8
	// gemmMCFMA is the Fast-mode M blocking: the largest multiple of
	// gemmMRFMA not exceeding gemmMC, so interior A blocks pack into whole
	// 6-row panels and only the global bottom rim takes the edge kernel.
	gemmMCFMA = 126
)

// gemmScalarFlops is the m·n·k product below which the packing overhead
// outweighs the micro-kernel's gains and AddMul routes to the scalar
// reference instead. Both paths are bit-identical, so the cutoff is purely a
// performance knob.
const gemmScalarFlops = 16 * 16 * 16

// gemmBuffers holds one reusable pair of packing buffers. They are pooled so
// steady-state block updates (the engine performs thousands per run) do not
// allocate at all.
type gemmBuffers struct {
	a, b []float64
}

var gemmPool = sync.Pool{New: func() any { return new(gemmBuffers) }}

// ensure grows s to at least n elements, reusing capacity when present.
func ensure(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// addMulPacked is the packed GEMM driver behind AddMul. Callers have already
// validated shapes and handled alpha == 0.
func (m *Dense) addMulPacked(alpha float64, a, b *Dense) {
	bufs := gemmPool.Get().(*gemmBuffers)
	bufs.a = ensure(bufs.a, gemmMC*gemmKC)
	bufs.b = ensure(bufs.b, gemmKC*gemmNC)
	nr := gemmTileN()
	bigM, bigK, bigN := a.rows, a.cols, b.cols
	for jc := 0; jc < bigN; jc += gemmNC {
		nc := min(gemmNC, bigN-jc)
		for pc := 0; pc < bigK; pc += gemmKC {
			kc := min(gemmKC, bigK-pc)
			packB(bufs.b, b, pc, jc, kc, nc, nr)
			for ic := 0; ic < bigM; ic += gemmMC {
				mc := min(gemmMC, bigM-ic)
				packA(bufs.a, a, alpha, ic, pc, mc, kc, gemmMR)
				gemmMacro(m, bufs.a, bufs.b, ic, jc, mc, nc, kc, nr)
			}
		}
	}
	gemmPool.Put(bufs)
}

// addMulPackedFMA is the Fast-mode packed driver: same three-level blocking
// as addMulPacked, but packed for the 6×8 fused tile and dispatched to the
// FMA micro-kernel. Only reachable when gemmHaveFMA. Bit-identical to the
// math.FMA scalar reference addMulScalarFMA (rim tiles fuse via math.FMA,
// which the compiler lowers to the same VFMADD instruction).
func (m *Dense) addMulPackedFMA(alpha float64, a, b *Dense) {
	fastDispatch.Add(1)
	bufs := gemmPool.Get().(*gemmBuffers)
	bufs.a = ensure(bufs.a, gemmMC*gemmKC)
	bufs.b = ensure(bufs.b, gemmKC*gemmNC)
	bigM, bigK, bigN := a.rows, a.cols, b.cols
	for jc := 0; jc < bigN; jc += gemmNC {
		nc := min(gemmNC, bigN-jc)
		for pc := 0; pc < bigK; pc += gemmKC {
			kc := min(gemmKC, bigK-pc)
			packB(bufs.b, b, pc, jc, kc, nc, gemmNRFMA)
			for ic := 0; ic < bigM; ic += gemmMCFMA {
				mc := min(gemmMCFMA, bigM-ic)
				packA(bufs.a, a, alpha, ic, pc, mc, kc, gemmMRFMA)
				gemmMacroFMA(m, bufs.a, bufs.b, ic, jc, mc, nc, kc)
			}
		}
	}
	gemmPool.Put(bufs)
}

// packA packs the mc×kc block of a at (ic, pc) into row panels of mr rows
// (gemmMR for Strict, gemmMRFMA for Fast), k-major within each panel, with
// alpha folded in:
//
//	dst[p·mr·kc + k·mrEff + r] = alpha · a[ic+p·mr+r, pc+k]
//
// The final panel may have mrEff < mr rows and is packed tightly (stride
// mrEff); no zero padding, so NaN/Inf in unrelated positions can never leak
// into real outputs.
func packA(dst []float64, a *Dense, alpha float64, ic, pc, mc, kc, mr int) {
	off := 0
	for p := 0; p < mc; p += mr {
		mrEff := min(mr, mc-p)
		for r := 0; r < mrEff; r++ {
			src := a.data[(ic+p+r)*a.stride+pc : (ic+p+r)*a.stride+pc+kc]
			q := off + r
			for k := 0; k < kc; k++ {
				dst[q] = alpha * src[k]
				q += mrEff
			}
		}
		off += mrEff * kc
	}
}

// packB packs the kc×nc block of b at (pc, jc) into column panels of nr
// columns, k-major within each panel:
//
//	dst[p·nr·kc + k·nrEff + c] = b[pc+k, jc+p·nr+c]
//
// The final panel may have nrEff < nr columns and is packed tightly.
func packB(dst []float64, b *Dense, pc, jc, kc, nc, nr int) {
	off := 0
	for p := 0; p < nc; p += nr {
		nrEff := min(nr, nc-p)
		for k := 0; k < kc; k++ {
			src := b.data[(pc+k)*b.stride+jc+p : (pc+k)*b.stride+jc+p+nrEff]
			copy(dst[off+k*nrEff:off+(k+1)*nrEff], src)
		}
		off += nrEff * kc
	}
}

// gemmMacro sweeps the register tiles of one packed (mc×kc)·(kc×nc) block
// product into c at (ic, jc). Panel offsets are ip·kc / jp·kc because every
// panel before a full-size boundary is full-size. Full 4×8 tiles dispatch to
// the AVX assembly micro-kernel when available; a tight-packed 4-wide rim
// panel has exactly the generic tile's layout, so it reuses gemmMicro4x4,
// and everything else takes the variable-size edge kernel. All three are
// bit-identical.
func gemmMacro(c *Dense, packedA, packedB []float64, ic, jc, mc, nc, kc, nr int) {
	for jp := 0; jp < nc; jp += nr {
		nrEff := min(nr, nc-jp)
		pb := packedB[jp*kc:]
		for ip := 0; ip < mc; ip += gemmMR {
			mrEff := min(gemmMR, mc-ip)
			pa := packedA[ip*kc:]
			switch {
			case gemmHaveAVX && mrEff == gemmMR && nrEff == gemmNRAVX:
				gemmMicroAVX4x8(&c.data[(ic+ip)*c.stride+jc+jp], c.stride, &pa[0], &pb[0], kc)
			case mrEff == gemmMR && nrEff == gemmNR:
				gemmMicro4x4(c, ic+ip, jc+jp, pa, pb, kc)
			default:
				gemmMicroEdge(c, ic+ip, jc+jp, mrEff, nrEff, pa, pb, kc)
			}
		}
	}
}

// gemmMicro4x4 is the full-size register tile: sixteen accumulators live
// across the k loop, loaded from and stored to C exactly once. Per k
// iteration it performs 16 multiply–adds against 8 contiguous loads.
func gemmMicro4x4(c *Dense, i0, j0 int, pa, pb []float64, kc int) {
	r0 := c.data[(i0+0)*c.stride+j0 : (i0+0)*c.stride+j0+4]
	r1 := c.data[(i0+1)*c.stride+j0 : (i0+1)*c.stride+j0+4]
	r2 := c.data[(i0+2)*c.stride+j0 : (i0+2)*c.stride+j0+4]
	r3 := c.data[(i0+3)*c.stride+j0 : (i0+3)*c.stride+j0+4]
	c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
	c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
	c20, c21, c22, c23 := r2[0], r2[1], r2[2], r2[3]
	c30, c31, c32, c33 := r3[0], r3[1], r3[2], r3[3]
	pa = pa[: 4*kc : 4*kc]
	pb = pb[: 4*kc : 4*kc]
	for k := 0; k < kc; k++ {
		av := pa[4*k : 4*k+4 : 4*k+4]
		bv := pb[4*k : 4*k+4 : 4*k+4]
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}

// gemmMacroFMA is the Fast-mode macro kernel: full 6×8 tiles dispatch to
// the fused assembly micro-kernel, rims to the math.FMA edge kernel — so
// every output element sees one rounding per multiply-add regardless of
// which kernel produced it.
func gemmMacroFMA(c *Dense, packedA, packedB []float64, ic, jc, mc, nc, kc int) {
	for jp := 0; jp < nc; jp += gemmNRFMA {
		nrEff := min(gemmNRFMA, nc-jp)
		pb := packedB[jp*kc:]
		for ip := 0; ip < mc; ip += gemmMRFMA {
			mrEff := min(gemmMRFMA, mc-ip)
			pa := packedA[ip*kc:]
			if mrEff == gemmMRFMA && nrEff == gemmNRFMA {
				gemmMicroFMA6x8(&c.data[(ic+ip)*c.stride+jc+jp], c.stride, &pa[0], &pb[0], kc)
			} else {
				gemmMicroEdgeFMA(c, ic+ip, jc+jp, mrEff, nrEff, pa, pb, kc)
			}
		}
	}
}

// gemmMicroEdgeFMA is the Fast-mode rim kernel: gemmMicroEdge's loop with
// the multiply-add fused through math.FMA (hardware FMA on the CPUs that
// reach this path), keeping rim elements on the same one-rounding contract
// as the assembly tile.
func gemmMicroEdgeFMA(c *Dense, i0, j0, mrEff, nrEff int, pa, pb []float64, kc int) {
	for r := 0; r < mrEff; r++ {
		crow := c.data[(i0+r)*c.stride+j0 : (i0+r)*c.stride+j0+nrEff]
		for cc := 0; cc < nrEff; cc++ {
			acc := crow[cc]
			q := r
			w := cc
			for k := 0; k < kc; k++ {
				acc = math.FMA(pa[q], pb[w], acc)
				q += mrEff
				w += nrEff
			}
			crow[cc] = acc
		}
	}
}

// gemmMicroEdge handles partial tiles at the right and bottom rims: same
// accumulation order, variable tile size, accumulators initialized from C.
func gemmMicroEdge(c *Dense, i0, j0, mrEff, nrEff int, pa, pb []float64, kc int) {
	for r := 0; r < mrEff; r++ {
		crow := c.data[(i0+r)*c.stride+j0 : (i0+r)*c.stride+j0+nrEff]
		for cc := 0; cc < nrEff; cc++ {
			acc := crow[cc]
			q := r
			w := cc
			for k := 0; k < kc; k++ {
				acc += pa[q] * pb[w]
				q += mrEff
				w += nrEff
			}
			crow[cc] = acc
		}
	}
}

// AddMulScalar is the reference GEMM: m += alpha·a·b as three nested loops
// in ikj order, accumulating each output element in increasing k. It is the
// semantics the packed kernel is tested against bit for bit, and stays
// selectable for debugging and benchmarking. alpha == 0 is a no-op (BLAS
// convention: the product is not formed, so NaN/Inf in a or b do not
// propagate); for nonzero alpha every product participates — 0·NaN is NaN.
func (m *Dense) AddMulScalar(alpha float64, a, b *Dense) {
	m.checkAddMul(a, b)
	if alpha == 0 {
		return
	}
	m.addMulScalar(alpha, a, b)
}

func (m *Dense) addMulScalar(alpha float64, a, b *Dense) {
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.stride : i*a.stride+a.cols]
		mrow := m.data[i*m.stride : i*m.stride+m.cols]
		for k, av := range arow {
			s := alpha * av
			brow := b.data[k*b.stride : k*b.stride+b.cols]
			for j, bv := range brow {
				mrow[j] += s * bv
			}
		}
	}
}

// AddMulScalarFMA is the Fast-mode reference GEMM: the same ikj loop nest
// and increasing-k accumulation as AddMulScalar, with each multiply-add
// fused through math.FMA. On AVX2+FMA hardware the packed Fast path is
// bit-identical to this reference (the property tests assert it); it is
// what "one rounding per multiply-add" means operationally. The alpha·A
// scaling remains a separate rounding, exactly as the packing step rounds
// it.
func (m *Dense) AddMulScalarFMA(alpha float64, a, b *Dense) {
	m.checkAddMul(a, b)
	if alpha == 0 {
		return
	}
	m.addMulScalarFMA(alpha, a, b)
}

func (m *Dense) addMulScalarFMA(alpha float64, a, b *Dense) {
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.stride : i*a.stride+a.cols]
		mrow := m.data[i*m.stride : i*m.stride+m.cols]
		for k, av := range arow {
			s := alpha * av
			brow := b.data[k*b.stride : k*b.stride+b.cols]
			for j, bv := range brow {
				mrow[j] = math.FMA(s, bv, mrow[j])
			}
		}
	}
}

func (m *Dense) checkAddMul(a, b *Dense) {
	if a.cols != b.rows || m.rows != a.rows || m.cols != b.cols {
		panic(fmt.Sprintf("matrix: AddMul %d×%d += %d×%d * %d×%d",
			m.rows, m.cols, a.rows, a.cols, b.rows, b.cols))
	}
}

// addMulDispatch routes a shape-checked, alpha≠0 update to the scalar or
// packed path by problem size.
func (m *Dense) addMulDispatch(alpha float64, a, b *Dense) {
	m.addMulDispatchMode(alpha, a, b, Strict)
}

// addMulDispatchMode is addMulDispatch under an explicit numerics contract.
// In Fast mode on FMA hardware both the small-size and the packed arm fuse
// (scalar FMA reference below the cutoff, packed 6×8 kernel above), so the
// whole Fast path is bit-identical to AddMulScalarFMA; elsewhere Fast is
// Strict.
func (m *Dense) addMulDispatchMode(alpha float64, a, b *Dense, mode Numerics) {
	small := a.rows*a.cols*b.cols <= gemmScalarFlops || a.cols < gemmNR
	if mode == Fast && gemmHaveFMA {
		if small {
			m.addMulScalarFMA(alpha, a, b)
			return
		}
		m.addMulPackedFMA(alpha, a, b)
		return
	}
	if small {
		m.addMulScalar(alpha, a, b)
		return
	}
	m.addMulPacked(alpha, a, b)
}

// AddMulParallel is AddMul computed by up to `workers` concurrent executors
// on the persistent worker pool (see pool.go), the GEMM partitioned into
// contiguous output-row bands: every output element is accumulated by
// exactly one executor in the same increasing-k order, so the result is
// bit-identical to the serial AddMul for any worker count. Workers ≤ 1,
// tiny problems, or bands thinner than one register tile run serially. The
// steady-state call is allocation-free.
func (m *Dense) AddMulParallel(alpha float64, a, b *Dense, workers int) {
	m.checkAddMul(a, b)
	if alpha == 0 {
		return
	}
	m.addMulParallelMode(alpha, a, b, workers, Strict)
}

// MulParallel returns a·b computed with AddMulParallel's row-band
// parallelism; bit-identical to Mul for any worker count.
func MulParallel(a, b *Dense, workers int) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: MulParallel %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	out.AddMulParallel(1, a, b, workers)
	return out
}
