package matrix

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q*R for an m×n matrix with
// m >= n: Q is m×m orthogonal, R is m×n upper trapezoidal.
type QR struct {
	// qr packs R in the upper triangle and the Householder vectors
	// (below the diagonal, with implicit unit leading entry) elsewhere.
	qr *Dense
	// tau[k] is the scaling factor of the k-th Householder reflector
	// H_k = I - tau_k * v_k * v_k^T.
	tau []float64
}

// FactorQR computes the Householder QR factorization of a (m >= n required).
// The input is not modified.
func FactorQR(a *Dense) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic(fmt.Sprintf("matrix: QR requires rows >= cols, got %d×%d", m, n))
	}
	qr := a.Clone()
	tau := make([]float64, n)
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Build the Householder reflector annihilating qr[k+1:, k].
		normx := 0.0
		for i := k; i < m; i++ {
			normx = math.Hypot(normx, qr.data[i*qr.stride+k])
		}
		if normx == 0 {
			tau[k] = 0
			continue
		}
		alpha := qr.data[k*qr.stride+k]
		beta := -math.Copysign(normx, alpha)
		// v = x - beta*e1, normalized so v[0] = 1.
		v0 := alpha - beta
		v[k] = 1
		for i := k + 1; i < m; i++ {
			v[i] = qr.data[i*qr.stride+k] / v0
		}
		// With v normalized so v[k]=1, H = I - tau*v*v^T maps x to beta*e1
		// for tau = (beta - alpha)/beta.
		tau[k] = (beta - alpha) / beta
		if tau[k] == 0 {
			continue
		}
		// Store R diagonal and the reflector below it.
		qr.data[k*qr.stride+k] = beta
		for i := k + 1; i < m; i++ {
			qr.data[i*qr.stride+k] = v[i]
		}
		// Apply H_k to the trailing columns.
		for j := k + 1; j < n; j++ {
			sum := qr.data[k*qr.stride+j]
			for i := k + 1; i < m; i++ {
				sum += v[i] * qr.data[i*qr.stride+j]
			}
			s := tau[k] * sum
			qr.data[k*qr.stride+j] -= s
			for i := k + 1; i < m; i++ {
				qr.data[i*qr.stride+j] -= s * v[i]
			}
		}
	}
	return &QR{qr: qr, tau: tau}
}

// FactorQRBlocked computes the Householder QR factorization with the
// compact-WY blocked algorithm (LAPACK geqrt structure): each panel of
// blockSize columns is factored with the unblocked reflector loop, the
// panel's reflectors are aggregated into the triangular factor T of
// I − V·T·Vᵀ, and the trailing columns are updated with three matrix
// products through the packed GEMM kernel — so the dominant flops run at
// level-3 speed. The packed layout and tau scalings are identical in form
// to FactorQR (R and Q agree to rounding; the trailing-update order
// differs). The input is not modified. blockSize ≤ 0 selects a default.
func FactorQRBlocked(a *Dense, blockSize int) *QR {
	return factorQRBlocked(a, blockSize, Strict)
}

// factorQRBlocked is FactorQRBlocked under an explicit numerics contract:
// the panel reflector loop and T accumulation stay scalar (reflector
// choices are made on Strict arithmetic of the panel), while the three
// compact-WY trailing products run under mode.
func factorQRBlocked(a *Dense, blockSize int, mode Numerics) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic(fmt.Sprintf("matrix: QR requires rows >= cols, got %d×%d", m, n))
	}
	if blockSize <= 0 {
		blockSize = 32
	}
	qr := a.Clone()
	tau := make([]float64, n)
	v := make([]float64, m)
	for k0 := 0; k0 < n; k0 += blockSize {
		k1 := min(k0+blockSize, n)
		// Panel factor: the unblocked reflector loop, applied only to the
		// panel's own columns.
		for k := k0; k < k1; k++ {
			normx := 0.0
			for i := k; i < m; i++ {
				normx = math.Hypot(normx, qr.data[i*qr.stride+k])
			}
			if normx == 0 {
				tau[k] = 0
				continue
			}
			alpha := qr.data[k*qr.stride+k]
			beta := -math.Copysign(normx, alpha)
			v0 := alpha - beta
			v[k] = 1
			for i := k + 1; i < m; i++ {
				v[i] = qr.data[i*qr.stride+k] / v0
			}
			tau[k] = (beta - alpha) / beta
			if tau[k] == 0 {
				continue
			}
			qr.data[k*qr.stride+k] = beta
			for i := k + 1; i < m; i++ {
				qr.data[i*qr.stride+k] = v[i]
			}
			for j := k + 1; j < k1; j++ {
				sum := qr.data[k*qr.stride+j]
				for i := k + 1; i < m; i++ {
					sum += v[i] * qr.data[i*qr.stride+j]
				}
				s := tau[k] * sum
				qr.data[k*qr.stride+j] -= s
				for i := k + 1; i < m; i++ {
					qr.data[i*qr.stride+j] -= s * v[i]
				}
			}
		}
		if k1 == n {
			break
		}
		// V: the panel's reflectors as a unit lower-trapezoidal matrix.
		pw := k1 - k0
		vMat := New(m-k0, pw)
		for j := 0; j < pw; j++ {
			vMat.data[j*vMat.stride+j] = 1
			for i := j + 1; i < m-k0; i++ {
				vMat.data[i*vMat.stride+j] = qr.data[(k0+i)*qr.stride+k0+j]
			}
		}
		// T: forward accumulation (LAPACK larft) so that
		// H(k0)···H(k1−1) = I − V·T·Vᵀ with T upper triangular.
		tMat := New(pw, pw)
		for j := 0; j < pw; j++ {
			tj := tau[k0+j]
			tMat.data[j*tMat.stride+j] = tj
			if tj == 0 || j == 0 {
				continue
			}
			// w = V(:,0:j)ᵀ · v_j, then T(0:j,j) = −tau_j · T(0:j,0:j) · w.
			w := make([]float64, j)
			for i := 0; i < j; i++ {
				sum := 0.0
				for r := j; r < m-k0; r++ {
					sum += vMat.data[r*vMat.stride+i] * vMat.data[r*vMat.stride+j]
				}
				w[i] = sum
			}
			for i := 0; i < j; i++ {
				sum := 0.0
				for k := i; k < j; k++ {
					sum += tMat.data[i*tMat.stride+k] * w[k]
				}
				tMat.data[i*tMat.stride+j] = -tj * sum
			}
		}
		// Trailing update: C ← (I − V·Tᵀ·Vᵀ)·C, i.e. C −= V·(Tᵀ·(Vᵀ·C)).
		trailing := qr.Slice(k0, m, k1, n)
		w1 := New(pw, n-k1)
		w1.AddMulNumerics(1, vMat.T(), trailing, mode)
		w2 := New(pw, n-k1)
		w2.AddMulNumerics(1, tMat.T(), w1, mode)
		trailing.AddMulNumerics(-1, vMat, w2, mode)
	}
	return &QR{qr: qr, tau: tau}
}

// QRFromPacked reconstitutes a factorization from its packed
// representation and tau scalings, as produced by Packed and Tau — e.g. on
// a remote rank that received them as messages. The inputs are adopted
// without copying; applying the result (QTMul, Q, R) runs the identical
// code path as the originating factorization, bit for bit.
func QRFromPacked(packed *Dense, tau []float64) *QR {
	if len(tau) != packed.cols {
		panic(fmt.Sprintf("matrix: %d tau scalings for a %d-column packed QR", len(tau), packed.cols))
	}
	return &QR{qr: packed, tau: tau}
}

// Packed returns the internal packed representation: R in the upper
// triangle and the Householder reflector columns (implicit unit leading
// entry) below the diagonal. The returned matrix is shared with the
// factorization; callers must not modify it.
func (f *QR) Packed() *Dense { return f.qr }

// Tau returns the Householder scaling factors, shared with the
// factorization.
func (f *QR) Tau() []float64 { return f.tau }

// R returns the upper trapezoidal factor as a new m×n matrix.
func (f *QR) R() *Dense {
	m, n := f.qr.rows, f.qr.cols
	r := New(m, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.data[i*r.stride+j] = f.qr.data[i*f.qr.stride+j]
		}
	}
	return r
}

// Q returns the full m×m orthogonal factor as a new matrix.
func (f *QR) Q() *Dense {
	m, n := f.qr.rows, f.qr.cols
	q := Identity(m)
	// Accumulate Q = H_0 H_1 ... H_{n-1} by applying reflectors in reverse.
	for k := n - 1; k >= 0; k-- {
		if f.tau[k] == 0 {
			continue
		}
		for j := 0; j < m; j++ {
			// w = v^T * q[:, j], with v = [0..0, 1, qr[k+1:, k]].
			sum := q.data[k*q.stride+j]
			for i := k + 1; i < m; i++ {
				sum += f.qr.data[i*f.qr.stride+k] * q.data[i*q.stride+j]
			}
			s := f.tau[k] * sum
			q.data[k*q.stride+j] -= s
			for i := k + 1; i < m; i++ {
				q.data[i*q.stride+j] -= s * f.qr.data[i*f.qr.stride+k]
			}
		}
	}
	return q
}

// QTMul overwrites b with Q^T * b. b must have m rows.
func (f *QR) QTMul(b *Dense) {
	m, n := f.qr.rows, f.qr.cols
	if b.rows != m {
		panic(fmt.Sprintf("matrix: QTMul with %d×%d rhs for %d-row Q", b.rows, b.cols, m))
	}
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		for j := 0; j < b.cols; j++ {
			sum := b.data[k*b.stride+j]
			for i := k + 1; i < m; i++ {
				sum += f.qr.data[i*f.qr.stride+k] * b.data[i*b.stride+j]
			}
			s := f.tau[k] * sum
			b.data[k*b.stride+j] -= s
			for i := k + 1; i < m; i++ {
				b.data[i*b.stride+j] -= s * f.qr.data[i*f.qr.stride+k]
			}
		}
	}
}

// SolveLeastSquares solves min ||A*x - b||_2 via the factorization,
// returning the n×nrhs solution. Requires a full-rank R (ErrSingular
// otherwise).
func (f *QR) SolveLeastSquares(b *Dense) (*Dense, error) {
	n := f.qr.cols
	qtb := b.Clone()
	f.QTMul(qtb)
	top := qtb.Slice(0, n, 0, qtb.cols).Clone()
	rTop := f.R().Slice(0, n, 0, n).Clone()
	if err := rTop.SolveUpper(top); err != nil {
		return nil, err
	}
	return top, nil
}
