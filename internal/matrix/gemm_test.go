package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// bitIdentical compares two matrices by the exact bit patterns of their
// elements — signed zeros and infinities count, strictly stronger than
// Equal. The one exception is NaN: when two different NaNs meet in an add,
// x86 returns the first source operand's payload, and which operand the
// compiler emits first is codegen-dependent — so NaN-ness is deterministic
// across kernels but the payload is not, and any NaN matches any NaN here
// (the documented contract in gemm.go).
func bitIdentical(a, b *Dense) bool {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < ac; j++ {
			x, y := a.At(i, j), b.At(i, j)
			if math.IsNaN(x) || math.IsNaN(y) {
				if !(math.IsNaN(x) && math.IsNaN(y)) {
					return false
				}
				continue
			}
			if math.Float64bits(x) != math.Float64bits(y) {
				return false
			}
		}
	}
	return true
}

// gemmTestDims is the dimension distribution for the property tests: every
// boundary the packed path cares about — degenerate 1, just under / at /
// over the register tile (gemmMR/gemmNR/gemmNRAVX), and sizes crossing the
// gemmMC row blocks and gemmKC depth panels.
var gemmTestDims = []int{1, 2, 3, 4, 5, 7, 8, 9, 11, 16, 17, 23, 31, 33, 47, 63, 130, 260}

func pickDim(rng *rand.Rand) int {
	return gemmTestDims[rng.Intn(len(gemmTestDims))]
}

// randomOperand builds an m×n matrix, optionally as a strided interior view
// of a larger allocation (stride > cols), optionally seeded with NaN/Inf/−0
// specials. The packed kernel must treat all of these identically to the
// scalar reference.
func randomOperand(rng *rand.Rand, m, n int, strided, specials bool) *Dense {
	var d *Dense
	if strided {
		big := New(m+2, n+3)
		for i := 0; i < m+2; i++ {
			for j := 0; j < n+3; j++ {
				big.Set(i, j, rng.NormFloat64())
			}
		}
		d = big.Slice(1, m+1, 2, n+2)
	} else {
		d = New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				d.Set(i, j, rng.NormFloat64())
			}
		}
	}
	if specials {
		vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0}
		for t := 0; t < 1+m*n/16; t++ {
			d.Set(rng.Intn(m), rng.Intn(n), vals[rng.Intn(len(vals))])
		}
	}
	return d
}

// TestGemmPackedMatchesScalarProperty is the core determinism contract:
// across 220 randomized shapes — non-square, 1×n and n×1 edge blocks,
// strided Slice views, NaN/Inf/−0 payloads, varying alpha — the packed
// driver must be bit-identical to the scalar ikj reference. It calls
// addMulPacked directly so even shapes below the dispatch cutoff exercise
// the packed path.
func TestGemmPackedMatchesScalarProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	alphas := []float64{1, -1, 0.5, -2.25, 1e-30, 3}
	for it := 0; it < 220; it++ {
		m, k, n := pickDim(rng), pickDim(rng), pickDim(rng)
		// Keep the occasional triple-large case affordable.
		if m*k*n > 1<<22 {
			n = 8
		}
		strided := it%3 == 0
		specials := it%7 == 0
		a := randomOperand(rng, m, k, strided, specials)
		b := randomOperand(rng, k, n, strided, specials)
		c0 := randomOperand(rng, m, n, strided, false)
		alpha := alphas[rng.Intn(len(alphas))]

		want := c0.Clone()
		want.addMulScalar(alpha, a, b)
		got := c0.Clone()
		got.addMulPacked(alpha, a, b)
		if !bitIdentical(got, want) {
			t.Fatalf("it=%d m=%d k=%d n=%d alpha=%v strided=%v specials=%v: packed differs from scalar",
				it, m, k, n, alpha, strided, specials)
		}
	}
}

// TestAddMulDispatchMatchesScalar covers the public entry point (with its
// size-based dispatch) on the same contract.
func TestAddMulDispatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	for it := 0; it < 60; it++ {
		m, k, n := pickDim(rng), pickDim(rng), pickDim(rng)
		if m*k*n > 1<<22 {
			k = 8
		}
		a := randomOperand(rng, m, k, false, it%5 == 0)
		b := randomOperand(rng, k, n, false, it%5 == 0)
		c0 := randomOperand(rng, m, n, false, false)
		want := c0.Clone()
		want.AddMulScalar(1, a, b)
		got := c0.Clone()
		got.AddMul(1, a, b)
		if !bitIdentical(got, want) {
			t.Fatalf("it=%d m=%d k=%d n=%d: AddMul differs from AddMulScalar", it, m, k, n)
		}
	}
}

// TestAddMulParallelBitIdentical: any worker count must reproduce the
// serial result bit for bit (row bands are disjoint outputs, same k order).
// Run with -race to check the band partitioning for data races.
func TestAddMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	shapes := [][3]int{{1, 5, 7}, {4, 16, 8}, {7, 33, 9}, {33, 17, 31}, {63, 64, 65}, {130, 40, 50}}
	workers := []int{0, 1, 2, 3, 4, 7, 16, 100}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randomOperand(rng, m, k, false, false)
		b := randomOperand(rng, k, n, false, false)
		c0 := randomOperand(rng, m, n, false, false)
		want := c0.Clone()
		want.AddMul(1.5, a, b)
		for _, w := range workers {
			got := c0.Clone()
			got.AddMulParallel(1.5, a, b, w)
			if !bitIdentical(got, want) {
				t.Fatalf("m=%d k=%d n=%d workers=%d: parallel differs from serial", m, k, n, w)
			}
		}
	}
}

func TestMulParallelMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	a := randomOperand(rng, 37, 29, false, false)
	b := randomOperand(rng, 29, 41, false, false)
	want := Mul(a, b)
	for _, w := range []int{2, 5} {
		if got := MulParallel(a, b, w); !bitIdentical(got, want) {
			t.Fatalf("workers=%d: MulParallel differs from Mul", w)
		}
	}
}

// TestAddMulNaNInfPropagation is the regression test for the removed
// `if av == 0 { continue }` fast path: with nonzero alpha, a zero in A must
// not suppress NaN/Inf coming from B (0·NaN = NaN, 0·Inf = NaN).
func TestAddMulNaNInfPropagation(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		a := NewFromSlice(1, 1, []float64{0})
		b := NewFromSlice(1, 1, []float64{bad})
		c := NewFromSlice(1, 1, []float64{1})
		c.AddMul(1, a, b)
		if !math.IsNaN(c.At(0, 0)) {
			t.Fatalf("AddMul dropped 0·%v: got %v, want NaN", bad, c.At(0, 0))
		}
		c = NewFromSlice(1, 1, []float64{1})
		c.AddMulScalar(1, a, b)
		if !math.IsNaN(c.At(0, 0)) {
			t.Fatalf("AddMulScalar dropped 0·%v: got %v, want NaN", bad, c.At(0, 0))
		}
	}
	// alpha == 0 stays the BLAS no-op: the product is never formed, so NaN
	// operands do not propagate and the output is untouched.
	a := NewFromSlice(1, 1, []float64{math.NaN()})
	b := NewFromSlice(1, 1, []float64{math.Inf(1)})
	c := NewFromSlice(1, 1, []float64{3})
	c.AddMul(0, a, b)
	if c.At(0, 0) != 3 {
		t.Fatalf("AddMul with alpha=0 modified its output: %v", c.At(0, 0))
	}
}

// TestSolveLowerUnitNaNPropagation is the regression test for the removed
// `if l == 0 { continue }` fast path in forward substitution: a zero
// multiplier must not block NaN propagation from an earlier row.
func TestSolveLowerUnitNaNPropagation(t *testing.T) {
	l := NewFromSlice(2, 2, []float64{1, 0, 0, 1}) // L = I, l21 = 0
	b := NewFromSlice(2, 1, []float64{math.NaN(), 1})
	l.SolveLowerUnit(b)
	// Row 1: b1 − l21·b0 = 1 − 0·NaN = NaN.
	if !math.IsNaN(b.At(1, 0)) {
		t.Fatalf("SolveLowerUnit dropped 0·NaN: got %v, want NaN", b.At(1, 0))
	}
	ls := NewFromSlice(2, 2, []float64{1, 0, 0, 1})
	bs := NewFromSlice(2, 1, []float64{math.NaN(), 1})
	ls.SolveLowerUnitScalar(bs)
	if !math.IsNaN(bs.At(1, 0)) {
		t.Fatalf("SolveLowerUnitScalar dropped 0·NaN: got %v, want NaN", bs.At(1, 0))
	}
}

// TestSolveLowerUnitBlockedMatchesScalar pins the blocked forward TRSM to
// the scalar reference bit for bit (the blocked loop preserves the exact
// per-element accumulation order).
func TestSolveLowerUnitBlockedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	for _, n := range []int{1, 3, 17, 64, 65, 100, 150} {
		for _, cols := range []int{1, 5, 33} {
			l := randomOperand(rng, n, n, false, false)
			for i := 0; i < n; i++ {
				l.Set(i, i, 1)
				for j := i + 1; j < n; j++ {
					l.Set(i, j, 0)
				}
			}
			b0 := randomOperand(rng, n, cols, false, false)
			want := b0.Clone()
			l.SolveLowerUnitScalar(want)
			got := b0.Clone()
			l.SolveLowerUnit(got)
			if !bitIdentical(got, want) {
				t.Fatalf("n=%d cols=%d: blocked forward TRSM differs from scalar", n, cols)
			}
		}
	}
}

// TestSolveUpperBlockedMatchesScalarApprox: the blocked backward TRSM
// reorders the update sums (documented in DESIGN.md §7), so it agrees with
// the scalar reference to rounding rather than bitwise.
func TestSolveUpperBlockedMatchesScalarApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(706))
	for _, n := range []int{1, 3, 17, 64, 65, 100} {
		u := randomOperand(rng, n, n, false, false)
		for i := 0; i < n; i++ {
			u.Set(i, i, 2+rng.Float64())
			for j := 0; j < i; j++ {
				u.Set(i, j, 0)
			}
		}
		b0 := randomOperand(rng, n, 7, false, false)
		want := b0.Clone()
		if err := u.SolveUpperScalar(want); err != nil {
			t.Fatal(err)
		}
		got := b0.Clone()
		if err := u.SolveUpper(got); err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("n=%d: blocked backward TRSM diverges from scalar", n)
		}
	}
}

// TestSolveUpperSingularLeavesRHSUntouched: the blocked SolveUpper checks
// the whole diagonal up front, so on a singular factor the right-hand side
// must come back unmodified.
func TestSolveUpperSingularLeavesRHSUntouched(t *testing.T) {
	u := NewFromSlice(2, 2, []float64{1, 2, 0, 0})
	b := NewFromSlice(2, 1, []float64{3, 4})
	if err := u.SolveUpper(b); err == nil {
		t.Fatal("singular factor accepted")
	}
	if b.At(0, 0) != 3 || b.At(1, 0) != 4 {
		t.Fatalf("rhs modified on singular factor: %v, %v", b.At(0, 0), b.At(1, 0))
	}
}
