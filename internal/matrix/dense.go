// Package matrix provides the dense linear algebra substrate used throughout
// hetgrid: a column-stride row-major Dense matrix type, the BLAS-like
// building blocks (GEMM, rank-k updates, triangular solves), and the
// LAPACK-like factorizations (LU with partial pivoting, Householder QR) that
// the ScaLAPACK-style distributed kernels are built from.
//
// Everything is pure Go and stdlib-only. The package favours clarity and
// numerical robustness over peak flop rates: hetgrid uses it to verify that
// data distributions do not change numerical results and to drive the
// block-level replay of the distributed algorithms, not to compete with
// tuned BLAS.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned (or wrapped) when operand dimensions are incompatible.
var ErrShape = errors.New("matrix: dimension mismatch")

// ErrSingular is returned by factorizations and solvers when the matrix is
// exactly singular to working precision.
var ErrSingular = errors.New("matrix: singular matrix")

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty 0×0 matrix ready for use with SetDims. A Dense
// may be a view into another matrix's backing array (see Slice), in which
// case Stride exceeds Cols and mutations are shared.
type Dense struct {
	rows, cols int
	stride     int
	data       []float64
}

// New returns a zero-initialized r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, stride: c, data: make([]float64, r*c)}
}

// NewFromSlice returns an r×c matrix whose entries are taken from data in
// row-major order. The slice is copied; len(data) must equal r*c.
func NewFromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: NewFromSlice got %d values for %d×%d", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// NewFromRows returns a matrix whose i-th row is rows[i]. All rows must have
// equal length.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row 0 has %d entries, row %d has %d", c, i, len(row)))
		}
		copy(m.data[i*m.stride:i*m.stride+c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*m.stride+i] = 1
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.stride+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.stride+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.stride+j] += v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// RawRow returns the i-th row as a slice sharing the matrix's backing array.
// Mutating the slice mutates the matrix.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.stride : i*m.stride+m.cols]
}

// Clone returns a deep copy of m with a compact stride.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*out.stride:i*out.stride+m.cols], m.data[i*m.stride:i*m.stride+m.cols])
	}
	return out
}

// CopyFrom copies src into m; dimensions must match exactly.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("matrix: CopyFrom %d×%d into %d×%d", src.rows, src.cols, m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		copy(m.data[i*m.stride:i*m.stride+m.cols], src.data[i*src.stride:i*src.stride+src.cols])
	}
}

// Slice returns a view of the rectangle [i0,i1)×[j0,j1). The view shares
// storage with m: writes through the view are visible in m.
func (m *Dense) Slice(i0, i1, j0, j1 int) *Dense {
	if i0 < 0 || i1 < i0 || i1 > m.rows || j0 < 0 || j1 < j0 || j1 > m.cols {
		panic(fmt.Sprintf("matrix: slice [%d:%d,%d:%d] out of range %d×%d", i0, i1, j0, j1, m.rows, m.cols))
	}
	return &Dense{
		rows:   i1 - i0,
		cols:   j1 - j0,
		stride: m.stride,
		data:   m.data[i0*m.stride+j0 : (i1-1)*m.stride+j1 : (i1-1)*m.stride+j1],
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride:]
		for j := 0; j < m.cols; j++ {
			out.data[j*out.stride+i] = row[j]
		}
	}
	return out
}

// Scale multiplies every entry of m by a, in place.
func (m *Dense) Scale(a float64) {
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride : i*m.stride+m.cols]
		for j := range row {
			row[j] *= a
		}
	}
}

// Zero sets every entry of m to 0, in place.
func (m *Dense) Zero() {
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride : i*m.stride+m.cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// Equal reports whether m and n have the same shape and identical entries.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		a := m.data[i*m.stride : i*m.stride+m.cols]
		b := n.data[i*n.stride : i*n.stride+n.cols]
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// EqualApprox reports whether m and n have the same shape and all entries
// within tol of each other (absolute difference).
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		a := m.data[i*m.stride : i*m.stride+m.cols]
		b := n.data[i*n.stride : i*n.stride+n.cols]
		for j := range a {
			if math.Abs(a[j]-b[j]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride : i*m.stride+m.cols]
		for _, v := range row {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	// Two-pass scaling avoids overflow for large entries.
	scale := m.MaxAbs()
	if scale == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride : i*m.stride+m.cols]
		for _, v := range row {
			s := v / scale
			sum += s * s
		}
	}
	return scale * math.Sqrt(sum)
}

// InfNorm returns the maximum absolute row sum of m.
func (m *Dense) InfNorm() float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride : i*m.stride+m.cols]
		sum := 0.0
		for _, v := range row {
			sum += math.Abs(v)
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// OneNorm returns the maximum absolute column sum of m.
func (m *Dense) OneNorm() float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride : i*m.stride+m.cols]
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	max := 0.0
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// SwapRows exchanges rows i and j in place.
func (m *Dense) SwapRows(i, j int) {
	if i == j {
		return
	}
	a := m.RawRow(i)
	b := m.RawRow(j)
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// String renders the matrix with aligned, fixed-precision columns. Intended
// for debugging and small matrices.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.4f", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
