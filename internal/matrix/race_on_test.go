//go:build race

package matrix

// raceEnabled lets allocation pins skip under the race detector, whose
// instrumentation forces heap escapes the production build does not have.
const raceEnabled = true
