package matrix

import "math/rand"

// Random returns an r×c matrix with entries drawn uniformly from [-1, 1)
// using rng. Deterministic for a seeded rng, which the experiment harness
// relies on for reproducibility.
func Random(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomWellConditioned returns an n×n diagonally dominant random matrix:
// uniform [-1,1) entries with n added to the diagonal. Such matrices are
// safely non-singular, so LU-based replay tests never hit pivot breakdown.
func RandomWellConditioned(n int, rng *rand.Rand) *Dense {
	m := Random(n, n, rng)
	for i := 0; i < n; i++ {
		m.data[i*m.stride+i] += float64(n)
	}
	return m
}

// RandomRank1 returns the outer product u*v^T of random positive vectors,
// useful for constructing rank-1 cycle-time matrices in tests.
func RandomRank1(r, c int, rng *rand.Rand) *Dense {
	u := make([]float64, r)
	v := make([]float64, c)
	for i := range u {
		u[i] = 0.1 + rng.Float64()
	}
	for j := range v {
		v[j] = 0.1 + rng.Float64()
	}
	m := New(r, c)
	for i := 0; i < r; i++ {
		row := m.data[i*m.stride : i*m.stride+c]
		for j := range row {
			row[j] = u[i] * v[j]
		}
	}
	return m
}
