package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulKnown(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewFromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("Mul =\n%vwant\n%v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(5, 5, rng)
	if !Mul(a, Identity(5)).EqualApprox(a, 1e-14) {
		t.Fatal("A*I != A")
	}
	if !Mul(Identity(5), a).EqualApprox(a, 1e-14) {
		t.Fatal("I*A != A")
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := 1 + int(uint(seed)%5)
		k := 1 + int(uint(seed>>4)%5)
		c := 1 + int(uint(seed>>8)%5)
		k2 := 1 + int(uint(seed>>12)%5)
		a := Random(r, k, rng)
		b := Random(k, c, rng)
		cc := Random(c, k2, rng)
		left := Mul(Mul(a, b), cc)
		right := Mul(a, Mul(b, cc))
		return left.EqualApprox(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddMulAccumulates(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 0, 0, 1})
	b := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	m := NewFromSlice(2, 2, []float64{10, 10, 10, 10})
	m.AddMul(2, a, b)
	want := NewFromSlice(2, 2, []float64{12, 14, 16, 18})
	if !m.Equal(want) {
		t.Fatalf("AddMul =\n%vwant\n%v", m, want)
	}
	// alpha = 0 must be a no-op.
	before := m.Clone()
	m.AddMul(0, a, b)
	if !m.Equal(before) {
		t.Fatal("AddMul with alpha=0 modified the receiver")
	}
}

func TestSubSum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Random(3, 4, rng)
	b := Random(3, 4, rng)
	if !Sum(Sub(a, b), b).EqualApprox(a, 1e-14) {
		t.Fatal("(a-b)+b != a")
	}
	d := Sub(a, a)
	if d.MaxAbs() != 0 {
		t.Fatal("a-a != 0")
	}
}

func TestMulVec(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestSolveLowerUnit(t *testing.T) {
	l := NewFromSlice(3, 3, []float64{
		1, 0, 0,
		2, 1, 0,
		3, 4, 1,
	})
	x := NewFromSlice(3, 1, []float64{1, 1, 1})
	b := Mul(l, x)
	l.SolveLowerUnit(b)
	if !b.EqualApprox(x, 1e-13) {
		t.Fatalf("SolveLowerUnit: got %v", b)
	}
}

func TestSolveLowerUnitIgnoresUpperAndDiag(t *testing.T) {
	// Garbage above the diagonal and a non-1 diagonal must be ignored.
	l := NewFromSlice(2, 2, []float64{
		7, 99,
		2, -5,
	})
	b := NewFromSlice(2, 1, []float64{1, 5})
	l.SolveLowerUnit(b)
	// Effective L = [[1,0],[2,1]]: x0=1, x1=5-2*1=3.
	if b.At(0, 0) != 1 || b.At(1, 0) != 3 {
		t.Fatalf("got %v", b)
	}
}

func TestSolveUpper(t *testing.T) {
	u := NewFromSlice(3, 3, []float64{
		2, 1, -1,
		0, 3, 2,
		0, 0, 4,
	})
	x := NewFromSlice(3, 2, []float64{1, 2, -1, 0, 2, 1})
	b := Mul(u, x)
	if err := u.SolveUpper(b); err != nil {
		t.Fatal(err)
	}
	if !b.EqualApprox(x, 1e-13) {
		t.Fatalf("SolveUpper mismatch:\n%v", b)
	}
}

func TestSolveUpperSingular(t *testing.T) {
	u := NewFromSlice(2, 2, []float64{1, 2, 0, 0})
	if err := u.SolveUpper(New(2, 1)); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveUpperRight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := New(3, 3)
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			u.Set(i, j, 1+rng.Float64())
		}
	}
	m := Random(4, 3, rng)
	orig := m.Clone()
	if err := m.SolveUpperRight(u); err != nil {
		t.Fatal(err)
	}
	if !Mul(m, u).EqualApprox(orig, 1e-12) {
		t.Fatal("SolveUpperRight: (m*U^{-1})*U != m")
	}
}

func TestSolveUpperRightSingular(t *testing.T) {
	u := NewFromSlice(2, 2, []float64{1, 5, 0, 0})
	m := New(3, 2)
	if err := m.SolveUpperRight(u); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLowerUnitRight(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, rng.Float64())
		}
	}
	m := Random(2, 3, rng)
	orig := m.Clone()
	m.SolveLowerUnitRight(l)
	if !Mul(m, l).EqualApprox(orig, 1e-12) {
		t.Fatal("SolveLowerUnitRight: (m*L^{-1})*L != m")
	}
}

func TestTriangularSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		n := 1 + int(uint(seed)%6)
		u := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				u.Set(i, j, 0.5+rng.Float64())
			}
		}
		x := Random(n, 2, rng)
		b := Mul(u, x)
		if err := u.SolveUpper(b); err != nil {
			return false
		}
		return b.EqualApprox(x, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(4, 4, rand.New(rand.NewSource(42)))
	b := Random(4, 4, rand.New(rand.NewSource(42)))
	if !a.Equal(b) {
		t.Fatal("Random is not deterministic for equal seeds")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if v := a.At(i, j); v < -1 || v >= 1 {
				t.Fatalf("Random entry %v outside [-1,1)", v)
			}
		}
	}
}

func TestRandomRank1HasRankOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := RandomRank1(4, 5, rng)
	// Every 2×2 minor must vanish.
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			det := m.At(i, j)*m.At(i+1, j+1) - m.At(i, j+1)*m.At(i+1, j)
			if math.Abs(det) > 1e-12 {
				t.Fatalf("2×2 minor (%d,%d) = %v, want 0", i, j, det)
			}
		}
	}
}

func TestRandomWellConditionedSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := RandomWellConditioned(8, rng)
	if _, err := Factor(m); err != nil {
		t.Fatalf("well-conditioned matrix reported singular: %v", err)
	}
}
