package matrix

import "fmt"

// Mul returns the product a*b as a newly allocated matrix.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	out.AddMul(1, a, b)
	return out
}

// AddMul accumulates m += alpha * a * b. This is the GEMM kernel the
// distributed outer-product algorithm replays block by block. Large updates
// route through the packed, register-blocked kernel (see gemm.go); small
// ones run the scalar reference. Both accumulate each output element in the
// identical increasing-k order, so the choice is invisible: results are bit
// for bit the same either way, and NaN/Inf propagate per IEEE semantics
// (0·NaN is NaN). alpha == 0 is a no-op by BLAS convention — the product is
// never formed.
func (m *Dense) AddMul(alpha float64, a, b *Dense) {
	m.checkAddMul(a, b)
	if alpha == 0 {
		return
	}
	m.addMulDispatch(alpha, a, b)
}

// Sub returns a - b as a newly allocated matrix.
func Sub(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: Sub %d×%d - %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.data[i*a.stride : i*a.stride+a.cols]
		br := b.data[i*b.stride : i*b.stride+b.cols]
		or := out.data[i*out.stride : i*out.stride+out.cols]
		for j := range ar {
			or[j] = ar[j] - br[j]
		}
	}
	return out
}

// Sum returns a + b as a newly allocated matrix.
func Sum(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: Sum %d×%d + %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.data[i*a.stride : i*a.stride+a.cols]
		br := b.data[i*b.stride : i*b.stride+b.cols]
		or := out.data[i*out.stride : i*out.stride+out.cols]
		for j := range ar {
			or[j] = ar[j] + br[j]
		}
	}
	return out
}

// MulVec returns a*x for a vector x of length a.Cols().
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("matrix: MulVec %d×%d by vector %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.stride : i*a.stride+a.cols]
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}

// trsmBlock is the panel height of the blocked triangular solves: diagonal
// blocks this size are solved by substitution, everything off-diagonal is a
// GEMM update through the packed kernel.
const trsmBlock = 64

// SolveLowerUnit solves L*x = b in place over the columns of b, where L is
// unit lower triangular (diagonal treated as 1; strictly-upper part of the
// receiver ignored). b is overwritten with the solution.
//
// The implementation is a right-looking blocked TRSM: each trsmBlock
// diagonal block is solved by forward substitution and the rows below it
// receive one rank-trsmBlock GEMM update. Per output element the update
// terms still arrive in strictly increasing k order with the same rounding
// as plain substitution, so the blocked solve is bit-identical to the
// scalar reference (SolveLowerUnitScalar). Zero multipliers are not
// skipped: 0·NaN is NaN, per IEEE semantics.
func (m *Dense) SolveLowerUnit(b *Dense) {
	if m.rows != m.cols || m.rows != b.rows {
		panic(fmt.Sprintf("matrix: SolveLowerUnit %d×%d with rhs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	m.solveLowerUnitMode(b, Strict)
}

// solveLowerUnitMode is the blocked forward solve under an explicit
// numerics contract: the off-diagonal rank-trsmBlock GEMM updates run
// under mode, the diagonal substitutions stay scalar. Strict is exactly
// the historical SolveLowerUnit. Shapes were validated by the caller.
func (m *Dense) solveLowerUnitMode(b *Dense, mode Numerics) {
	n := m.rows
	if n <= trsmBlock || b.cols < gemmNR {
		m.solveLowerUnitRange(b, 0, n)
		return
	}
	for k0 := 0; k0 < n; k0 += trsmBlock {
		k1 := min(k0+trsmBlock, n)
		m.solveLowerUnitRange(b, k0, k1)
		if k1 < n {
			// b[k1:n] -= L[k1:n, k0:k1] · b[k0:k1]
			b.Slice(k1, n, 0, b.cols).AddMulNumerics(-1, m.Slice(k1, n, k0, k1), b.Slice(k0, k1, 0, b.cols), mode)
		}
	}
}

// solveLowerUnitRange forward-substitutes rows [k0,k1) of b against the
// diagonal block m[k0:k1, k0:k1], assuming rows before k0 are already solved
// and their contribution already subtracted.
func (m *Dense) solveLowerUnitRange(b *Dense, k0, k1 int) {
	for i := k0 + 1; i < k1; i++ {
		li := m.data[i*m.stride : i*m.stride+i]
		bi := b.data[i*b.stride : i*b.stride+b.cols]
		for k := k0; k < i; k++ {
			l := li[k]
			bk := b.data[k*b.stride : k*b.stride+b.cols]
			for j := range bi {
				bi[j] -= l * bk[j]
			}
		}
	}
}

// SolveLowerUnitScalar is the unblocked reference forward substitution,
// kept selectable for testing and benchmarking; SolveLowerUnit is
// bit-identical to it.
func (m *Dense) SolveLowerUnitScalar(b *Dense) {
	if m.rows != m.cols || m.rows != b.rows {
		panic(fmt.Sprintf("matrix: SolveLowerUnit %d×%d with rhs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	m.solveLowerUnitRange(b, 0, m.rows)
}

// SolveUpper solves U*x = b in place over the columns of b, where U is upper
// triangular (strictly-lower part of the receiver ignored). Returns
// ErrSingular, with b unmodified, if a diagonal entry is zero.
//
// The implementation is a left-looking blocked TRSM: proceeding from the
// last trsmBlock panel upward, each panel first receives its trailing GEMM
// update and is then solved by backward substitution. Zero entries are not
// skipped (0·NaN is NaN). The blocked accumulation order differs from the
// unblocked SolveUpperScalar in the last ulp — both are deterministic, and
// every consumer in the repository uses this path on both sides of its
// comparisons.
func (m *Dense) SolveUpper(b *Dense) error {
	if m.rows != m.cols || m.rows != b.rows {
		panic(fmt.Sprintf("matrix: SolveUpper %d×%d with rhs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	n := m.rows
	for i := 0; i < n; i++ {
		if m.data[i*m.stride+i] == 0 {
			return ErrSingular
		}
	}
	if n <= trsmBlock || b.cols < gemmNR {
		m.solveUpperRange(b, 0, n)
		return nil
	}
	first := (n - 1) / trsmBlock * trsmBlock
	for k0 := first; k0 >= 0; k0 -= trsmBlock {
		k1 := min(k0+trsmBlock, n)
		if k1 < n {
			// b[k0:k1] -= U[k0:k1, k1:n] · b[k1:n]
			b.Slice(k0, k1, 0, b.cols).AddMul(-1, m.Slice(k0, k1, k1, n), b.Slice(k1, n, 0, b.cols))
		}
		m.solveUpperRange(b, k0, k1)
	}
	return nil
}

// solveUpperRange backward-substitutes rows [k0,k1) of b against the
// diagonal block m[k0:k1, k0:k1], assuming rows at and beyond k1 are solved
// and their contribution already subtracted. Diagonals were checked by the
// caller.
func (m *Dense) solveUpperRange(b *Dense, k0, k1 int) {
	for i := k1 - 1; i >= k0; i-- {
		d := m.data[i*m.stride+i]
		ui := m.data[i*m.stride : i*m.stride+k1]
		bi := b.data[i*b.stride : i*b.stride+b.cols]
		for k := i + 1; k < k1; k++ {
			u := ui[k]
			bk := b.data[k*b.stride : k*b.stride+b.cols]
			for j := range bi {
				bi[j] -= u * bk[j]
			}
		}
		for j := range bi {
			bi[j] /= d
		}
	}
}

// SolveUpperScalar is the unblocked reference backward substitution, kept
// selectable for testing and benchmarking. Like SolveUpper it rejects
// singular diagonals up front, leaving b unmodified.
func (m *Dense) SolveUpperScalar(b *Dense) error {
	if m.rows != m.cols || m.rows != b.rows {
		panic(fmt.Sprintf("matrix: SolveUpper %d×%d with rhs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	n := m.rows
	for i := 0; i < n; i++ {
		if m.data[i*m.stride+i] == 0 {
			return ErrSingular
		}
	}
	m.solveUpperRange(b, 0, n)
	return nil
}

// SolveUpperRight solves x*U = b in place over the rows of the receiver,
// i.e. it overwrites m with m * U^{-1}. U must be square upper triangular
// with m.Cols() == U.Rows(). This is the triangular update applied to the
// U-panel rows during right-looking LU. Returns ErrSingular on a zero
// diagonal.
func (m *Dense) SolveUpperRight(u *Dense) error {
	if u.rows != u.cols || m.cols != u.rows {
		panic(fmt.Sprintf("matrix: SolveUpperRight %d×%d by %d×%d", m.rows, m.cols, u.rows, u.cols))
	}
	n := u.rows
	for i := 0; i < n; i++ {
		if u.data[i*u.stride+i] == 0 {
			return ErrSingular
		}
	}
	for r := 0; r < m.rows; r++ {
		row := m.data[r*m.stride : r*m.stride+m.cols]
		for j := 0; j < n; j++ {
			sum := row[j]
			for k := 0; k < j; k++ {
				sum -= row[k] * u.data[k*u.stride+j]
			}
			row[j] = sum / u.data[j*u.stride+j]
		}
	}
	return nil
}

// SolveLowerUnitRight overwrites m with m * L^{-1} for unit lower triangular
// L (m.Cols() == L.Rows()). Used when replaying LU from the right.
func (m *Dense) SolveLowerUnitRight(l *Dense) {
	if l.rows != l.cols || m.cols != l.rows {
		panic(fmt.Sprintf("matrix: SolveLowerUnitRight %d×%d by %d×%d", m.rows, m.cols, l.rows, l.cols))
	}
	n := l.rows
	for r := 0; r < m.rows; r++ {
		row := m.data[r*m.stride : r*m.stride+m.cols]
		for j := n - 1; j >= 0; j-- {
			sum := row[j]
			for k := j + 1; k < n; k++ {
				sum -= row[k] * l.data[k*l.stride+j]
			}
			row[j] = sum
		}
	}
}
