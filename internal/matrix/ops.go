package matrix

import "fmt"

// Mul returns the product a*b as a newly allocated matrix.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	out.AddMul(1, a, b)
	return out
}

// AddMul accumulates m += alpha * a * b. This is the GEMM kernel the
// distributed outer-product algorithm replays block by block.
func (m *Dense) AddMul(alpha float64, a, b *Dense) {
	if a.cols != b.rows || m.rows != a.rows || m.cols != b.cols {
		panic(fmt.Sprintf("matrix: AddMul %d×%d += %d×%d * %d×%d",
			m.rows, m.cols, a.rows, a.cols, b.rows, b.cols))
	}
	if alpha == 0 {
		return
	}
	// ikj loop order: stream along contiguous rows of b and m.
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.stride : i*a.stride+a.cols]
		mrow := m.data[i*m.stride : i*m.stride+m.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			s := alpha * av
			brow := b.data[k*b.stride : k*b.stride+b.cols]
			for j, bv := range brow {
				mrow[j] += s * bv
			}
		}
	}
}

// Sub returns a - b as a newly allocated matrix.
func Sub(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: Sub %d×%d - %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.data[i*a.stride : i*a.stride+a.cols]
		br := b.data[i*b.stride : i*b.stride+b.cols]
		or := out.data[i*out.stride : i*out.stride+out.cols]
		for j := range ar {
			or[j] = ar[j] - br[j]
		}
	}
	return out
}

// Sum returns a + b as a newly allocated matrix.
func Sum(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: Sum %d×%d + %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.data[i*a.stride : i*a.stride+a.cols]
		br := b.data[i*b.stride : i*b.stride+b.cols]
		or := out.data[i*out.stride : i*out.stride+out.cols]
		for j := range ar {
			or[j] = ar[j] + br[j]
		}
	}
	return out
}

// MulVec returns a*x for a vector x of length a.Cols().
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("matrix: MulVec %d×%d by vector %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.stride : i*a.stride+a.cols]
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}

// SolveLowerUnit solves L*x = b in place over the columns of b, where L is
// unit lower triangular (diagonal treated as 1; strictly-upper part of the
// receiver ignored). b is overwritten with the solution.
func (m *Dense) SolveLowerUnit(b *Dense) {
	if m.rows != m.cols || m.rows != b.rows {
		panic(fmt.Sprintf("matrix: SolveLowerUnit %d×%d with rhs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	n := m.rows
	for i := 1; i < n; i++ {
		li := m.data[i*m.stride : i*m.stride+i]
		bi := b.data[i*b.stride : i*b.stride+b.cols]
		for k := 0; k < i; k++ {
			l := li[k]
			if l == 0 {
				continue
			}
			bk := b.data[k*b.stride : k*b.stride+b.cols]
			for j := range bi {
				bi[j] -= l * bk[j]
			}
		}
	}
}

// SolveUpper solves U*x = b in place over the columns of b, where U is upper
// triangular (strictly-lower part of the receiver ignored). Returns
// ErrSingular if a diagonal entry is zero.
func (m *Dense) SolveUpper(b *Dense) error {
	if m.rows != m.cols || m.rows != b.rows {
		panic(fmt.Sprintf("matrix: SolveUpper %d×%d with rhs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	n := m.rows
	for i := n - 1; i >= 0; i-- {
		d := m.data[i*m.stride+i]
		if d == 0 {
			return ErrSingular
		}
		ui := m.data[i*m.stride : i*m.stride+n]
		bi := b.data[i*b.stride : i*b.stride+b.cols]
		for k := i + 1; k < n; k++ {
			u := ui[k]
			if u == 0 {
				continue
			}
			bk := b.data[k*b.stride : k*b.stride+b.cols]
			for j := range bi {
				bi[j] -= u * bk[j]
			}
		}
		for j := range bi {
			bi[j] /= d
		}
	}
	return nil
}

// SolveUpperRight solves x*U = b in place over the rows of the receiver,
// i.e. it overwrites m with m * U^{-1}. U must be square upper triangular
// with m.Cols() == U.Rows(). This is the triangular update applied to the
// U-panel rows during right-looking LU. Returns ErrSingular on a zero
// diagonal.
func (m *Dense) SolveUpperRight(u *Dense) error {
	if u.rows != u.cols || m.cols != u.rows {
		panic(fmt.Sprintf("matrix: SolveUpperRight %d×%d by %d×%d", m.rows, m.cols, u.rows, u.cols))
	}
	n := u.rows
	for i := 0; i < n; i++ {
		if u.data[i*u.stride+i] == 0 {
			return ErrSingular
		}
	}
	for r := 0; r < m.rows; r++ {
		row := m.data[r*m.stride : r*m.stride+m.cols]
		for j := 0; j < n; j++ {
			sum := row[j]
			for k := 0; k < j; k++ {
				sum -= row[k] * u.data[k*u.stride+j]
			}
			row[j] = sum / u.data[j*u.stride+j]
		}
	}
	return nil
}

// SolveLowerUnitRight overwrites m with m * L^{-1} for unit lower triangular
// L (m.Cols() == L.Rows()). Used when replaying LU from the right.
func (m *Dense) SolveLowerUnitRight(l *Dense) {
	if l.rows != l.cols || m.cols != l.rows {
		panic(fmt.Sprintf("matrix: SolveLowerUnitRight %d×%d by %d×%d", m.rows, m.cols, l.rows, l.cols))
	}
	n := l.rows
	for r := 0; r < m.rows; r++ {
		row := m.data[r*m.stride : r*m.stride+m.cols]
		for j := n - 1; j >= 0; j-- {
			sum := row[j]
			for k := j + 1; k < n; k++ {
				sum -= row[k] * l.data[k*l.stride+j]
			}
			row[j] = sum
		}
	}
}
