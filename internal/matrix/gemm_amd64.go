//go:build amd64

package matrix

// gemmHaveAVX reports whether the AVX micro-kernel is usable on this CPU
// (and enabled by the OS). It is a variable, not a constant, so tests can
// force the pure-Go tile and assert both paths are bit-identical.
var gemmHaveAVX = cpuHasAVX()

// gemmHaveFMA reports whether the fused Fast-mode micro-kernel is usable:
// AVX2+FMA present and YMM state OS-enabled. Also a variable so tests can
// force the fallback and assert Fast degrades to the Strict path.
var gemmHaveFMA = cpuHasAVX2FMA()

// gemmTileN is the packed-B panel width the driver packs for: 8 columns for
// the AVX micro-kernel, gemmNR for the generic Go tile.
func gemmTileN() int {
	if gemmHaveAVX {
		return gemmNRAVX
	}
	return gemmNR
}

// cpuHasAVX reports CPU and OS support for 256-bit AVX: CPUID.1:ECX must
// advertise AVX and OSXSAVE, and XCR0 must have the XMM and YMM state bits
// set (the OS saves the full registers across context switches).
func cpuHasAVX() bool

// gemmMicroAVX4x8 is the assembly micro-kernel: a 4×8 tile of C held in
// eight YMM accumulators across the whole k loop. Updates are unfused
// VMULPD/VADDPD pairs — each lane performs exactly the two IEEE roundings
// (multiply, then add) of the scalar reference, in the same increasing-k
// order, so the asm path stays bit-identical to AddMulScalar. stride is in
// elements; pa advances 4 and pb 8 elements per k step. kc must be ≥ 1.
//
//go:noescape
func gemmMicroAVX4x8(c *float64, stride int, pa, pb *float64, kc int)

// cpuHasAVX2FMA reports CPU and OS support for the fused kernel: CPUID.1:ECX
// must advertise FMA, AVX and OSXSAVE, CPUID.(7,0):EBX must advertise AVX2,
// and XCR0 must have the XMM and YMM state bits set.
func cpuHasAVX2FMA() bool

// gemmMicroFMA6x8 is the Fast-mode assembly micro-kernel: a 6×8 tile of C
// held in twelve YMM accumulators across the whole k loop, updated with
// VFMADD231PD (one rounding per multiply-add) and software prefetch over
// the packed panels. Bit-identical to the math.FMA scalar reference, NOT to
// the Strict kernels — see the Numerics contract. stride is in elements; pa
// advances 6 and pb 8 elements per k step. kc must be ≥ 1.
//
//go:noescape
func gemmMicroFMA6x8(c *float64, stride int, pa, pb *float64, kc int)
