package matrix

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the compute layer's persistent worker pool. The parallel
// GEMM/TRSM paths and the engine's block-update fan-out used to spawn fresh
// goroutines (plus a WaitGroup allocation) on every call; steady-state
// distributed runs perform thousands of such calls per factorization. The
// pool replaces that with a fixed set of lazily-started workers fed by one
// buffered channel of by-value task descriptors:
//
//   - tasks are plain structs (matrix views are embedded by value), so a
//     submission is a channel copy — no per-call heap allocation;
//   - completion groups are recycled through a sync.Pool, extending the
//     serial packed path's zero-allocation guarantee to the parallel
//     steady state (pinned by TestAddMulParallelZeroAlloc);
//   - when the queue is full the submitter runs the task inline, which
//     both bounds latency and makes the pool deadlock-free under
//     arbitrary nesting (a task never waits on queue capacity);
//   - idle workers block in a channel receive — quiescent, no spinning —
//     and the pool never grows, so hammering it from many concurrent
//     factorizations cannot leak goroutines.
//
// Output partitions handed to the pool are always whole register-tile row
// bands (GEMM) or column bands (TRSM): disjoint in memory, so workers never
// write the same element and — tile alignment keeping band boundaries off
// shared lines in the common strides — rarely even the same cache line.
type poolTask struct {
	kind  int8
	mode  Numerics
	alpha float64
	// c/a/b are by-value views: taskGemm computes c += alpha·a·b, taskTrsm
	// solves a·x = c in place over c's columns (a unit lower triangular).
	c, a, b Dense
	// fn/lo/hi are the taskFunc form: run fn(lo), …, fn(hi-1).
	fn     func(i int)
	lo, hi int
	g      *poolGroup
}

const (
	taskGemm int8 = iota
	taskTrsm
	taskFunc
)

// poolGroup tracks one caller's outstanding tasks and captures the first
// worker panic for re-raise on the caller.
type poolGroup struct {
	wg       sync.WaitGroup
	mu       sync.Mutex
	panicked any
}

var groupPool = sync.Pool{New: func() any { return new(poolGroup) }}

// Pool instrumentation, exposed via PoolStats for the observability layer.
var (
	poolSubmitted atomic.Int64 // tasks handed to pool workers
	poolInline    atomic.Int64 // tasks run on the submitter (queue full)
	fastDispatch  atomic.Int64 // packed GEMM calls routed to the fused fast path
)

// PoolStats reports the worker pool's size and cumulative task counters,
// plus how many packed GEMM calls dispatched to the Fast fused kernel.
// Workers is 0 until the first parallel call starts the pool.
func PoolStats() (workers int, submitted, inline, fastCalls int64) {
	return int(poolWorkerCount.Load()), poolSubmitted.Load(), poolInline.Load(), fastDispatch.Load()
}

var (
	poolOnce        sync.Once
	poolTasks       chan poolTask
	poolWorkerCount atomic.Int64
)

// pool returns the task channel, starting the workers on first use. The
// pool is sized to the scheduler (GOMAXPROCS at start, minimum 2 so the
// concurrent paths stay exercised even on single-CPU machines); extra
// logical workers requested by callers simply produce more bands, which
// queue and drain.
func pool() chan poolTask {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 2 {
			n = 2
		}
		poolTasks = make(chan poolTask, 8*n)
		for i := 0; i < n; i++ {
			go poolWorker(poolTasks)
		}
		poolWorkerCount.Store(int64(n))
	})
	return poolTasks
}

func poolWorker(tasks <-chan poolTask) {
	for t := range tasks {
		runPoolTask(&t)
	}
}

// poolSubmit hands a task to the pool, or runs it inline when the queue is
// full — the non-blocking send is what makes nested parallel calls unable
// to deadlock on queue capacity.
func poolSubmit(t poolTask) {
	select {
	case pool() <- t:
		poolSubmitted.Add(1)
	default:
		poolInline.Add(1)
		runPoolTask(&t)
	}
}

// runPoolTask executes one task, routing any panic into the group so the
// caller's wait re-raises it (the engine's abort recovery lives on the
// calling goroutine).
func runPoolTask(t *poolTask) {
	defer t.g.taskDone()
	switch t.kind {
	case taskGemm:
		t.c.addMulDispatchMode(t.alpha, &t.a, &t.b, t.mode)
	case taskTrsm:
		t.a.solveLowerUnitMode(&t.c, t.mode)
	default:
		for i := t.lo; i < t.hi; i++ {
			t.fn(i)
		}
	}
}

func (g *poolGroup) taskDone() {
	if p := recover(); p != nil {
		g.mu.Lock()
		if g.panicked == nil {
			g.panicked = p
		}
		g.mu.Unlock()
	}
	g.wg.Done()
}

// getGroup returns a recycled completion group.
func getGroup() *poolGroup { return groupPool.Get().(*poolGroup) }

// finishGroup waits for the group's outstanding tasks, recycles it, and
// re-raises the first panic: callerPanic (from the submitter's own share)
// takes precedence, then the first worker panic.
func finishGroup(g *poolGroup, callerPanic any) {
	g.wg.Wait()
	p := g.panicked
	g.panicked = nil
	groupPool.Put(g)
	if callerPanic != nil {
		panic(callerPanic)
	}
	if p != nil {
		panic(p)
	}
}

// ParallelDo runs fn(0), …, fn(n-1) across at most workers concurrent
// executors in contiguous index chunks, blocking until all return. The
// caller always executes the first chunk itself; the rest go to the
// persistent pool. The split is purely a scheduling choice: callers use it
// for disjoint-output updates, so any worker count produces identical
// results. A panic in any chunk is re-raised on the caller after all
// chunks finish. workers ≤ 1 (or n ≤ 1) runs inline with no pool traffic.
func ParallelDo(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	g := getGroup()
	g.wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		poolSubmit(poolTask{kind: taskFunc, fn: fn, lo: n * w / workers, hi: n * (w + 1) / workers, g: g})
	}
	callerPanic := runChunk(fn, 0, n/workers)
	finishGroup(g, callerPanic)
}

// runChunk executes the caller's own share, capturing a panic so the group
// can still be awaited before re-raising.
func runChunk(fn func(i int), lo, hi int) (panicked any) {
	defer func() { panicked = recover() }()
	for i := lo; i < hi; i++ {
		fn(i)
	}
	return nil
}

// rowBand returns a by-value view of rows [i0, i1) — the no-allocation
// counterpart of Slice for handing disjoint output bands to pool tasks.
// Requires 0 ≤ i0 < i1 ≤ m.rows.
func (m *Dense) rowBand(i0, i1 int) Dense {
	end := (i1-1)*m.stride + m.cols
	return Dense{rows: i1 - i0, cols: m.cols, stride: m.stride, data: m.data[i0*m.stride : end : end]}
}

// colBand returns a by-value view of columns [j0, j1). Requires
// 0 ≤ j0 < j1 ≤ m.cols and m.rows ≥ 1.
func (m *Dense) colBand(j0, j1 int) Dense {
	end := (m.rows-1)*m.stride + j1
	return Dense{rows: m.rows, cols: j1 - j0, stride: m.stride, data: m.data[j0:end:end]}
}

// addMulParallelMode is the parallel GEMM driver behind AddMulParallel and
// AddMulParallelNumerics: the output is partitioned into contiguous
// register-tile row bands, bands beyond the first are submitted to the
// persistent pool, and the caller computes the first band while they run.
// Every output element is accumulated by exactly one executor in the
// mode's serial accumulation order, so Strict stays bit-identical to the
// serial Strict path for any worker count, and Fast produces exactly the
// serial Fast result. Shapes and alpha were validated by the caller.
func (m *Dense) addMulParallelMode(alpha float64, a, b *Dense, workers int, mode Numerics) {
	mr := gemmMR
	if mode == Fast && gemmHaveFMA {
		mr = gemmMRFMA
	}
	if workers > m.rows/mr {
		workers = m.rows / mr
	}
	if workers <= 1 || a.rows*a.cols*b.cols <= gemmScalarFlops {
		m.addMulDispatchMode(alpha, a, b, mode)
		return
	}
	// Band height: even split rounded up to a whole number of register
	// tiles, so only the last band carries an edge.
	band := ((m.rows+workers-1)/workers + mr - 1) / mr * mr
	g := getGroup()
	for i0 := band; i0 < m.rows; i0 += band {
		i1 := min(i0+band, m.rows)
		g.wg.Add(1)
		poolSubmit(poolTask{kind: taskGemm, mode: mode, alpha: alpha,
			c: m.rowBand(i0, i1), a: a.rowBand(i0, i1), b: *b, g: g})
	}
	callerPanic := func() (panicked any) {
		defer func() { panicked = recover() }()
		c0 := m.rowBand(0, min(band, m.rows))
		a0 := a.rowBand(0, min(band, a.rows))
		c0.addMulDispatchMode(alpha, &a0, b, mode)
		return nil
	}()
	finishGroup(g, callerPanic)
}

// SolveLowerUnitParallel solves L·x = b in place over the columns of b
// with `workers` concurrent executors, the right-hand side partitioned
// into contiguous column bands on the persistent pool. Columns are
// independent in a forward solve and the blocked solve is bit-identical to
// the scalar reference per column, so the result is bit-identical to
// SolveLowerUnit for any worker count.
func (m *Dense) SolveLowerUnitParallel(b *Dense, workers int) {
	m.SolveLowerUnitParallelNumerics(b, workers, Strict)
}

// SolveLowerUnitParallelNumerics is SolveLowerUnitParallel under an
// explicit numerics contract (the blocked solve's GEMM updates run under
// mode, exactly as the serial SolveLowerUnitNumerics).
func (m *Dense) SolveLowerUnitParallelNumerics(b *Dense, workers int, mode Numerics) {
	if m.rows != m.cols || m.rows != b.rows {
		panic("matrix: SolveLowerUnitParallel shape mismatch")
	}
	if workers > b.cols/gemmNR {
		workers = b.cols / gemmNR
	}
	if workers <= 1 || m.rows == 0 {
		m.solveLowerUnitMode(b, mode)
		return
	}
	band := ((b.cols+workers-1)/workers + gemmNR - 1) / gemmNR * gemmNR
	g := getGroup()
	for j0 := band; j0 < b.cols; j0 += band {
		j1 := min(j0+band, b.cols)
		g.wg.Add(1)
		poolSubmit(poolTask{kind: taskTrsm, mode: mode, a: *m, c: b.colBand(j0, j1), g: g})
	}
	callerPanic := func() (panicked any) {
		defer func() { panicked = recover() }()
		b0 := b.colBand(0, min(band, b.cols))
		m.solveLowerUnitMode(&b0, mode)
		return nil
	}()
	finishGroup(g, callerPanic)
}
