package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// eps is the double-precision unit roundoff.
const eps = 1.0 / (1 << 53)

// gammaFactor is the standard error-analysis quantity γ(t) = t·ε/(1−t·ε).
func gammaFactor(t int) float64 {
	x := float64(t) * eps
	return x / (1 - x)
}

// absClone returns |d| element-wise (NaN stays NaN).
func absClone(d *Dense) *Dense {
	r, c := d.Dims()
	out := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Set(i, j, math.Abs(d.At(i, j)))
		}
	}
	return out
}

func sameClass(x, y float64) bool {
	switch {
	case math.IsNaN(x):
		return math.IsNaN(y)
	case math.IsInf(x, 1):
		return math.IsInf(y, 1)
	case math.IsInf(x, -1):
		return math.IsInf(y, -1)
	default:
		return !math.IsNaN(y) && !math.IsInf(y, 0)
	}
}

// TestNumericsStringAndAvailability pins the enum names the parsers and CLI
// build on.
func TestNumericsStringAndAvailability(t *testing.T) {
	if Strict.String() != "strict" || Fast.String() != "fast" {
		t.Fatalf("String(): strict=%q fast=%q", Strict.String(), Fast.String())
	}
	if got := Numerics(9).String(); got != "numerics(9)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
	t.Logf("FastAvailable on this CPU: %v", FastAvailable())
}

// TestNumericsStrictIsDefault asserts AddMulNumerics(Strict) is bit-identical
// to plain AddMul — Strict must not change the historical contract.
func TestNumericsStrictIsDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m, k, n := pickDim(rng), pickDim(rng), pickDim(rng)
		a := randomOperand(rng, m, k, trial%2 == 0, trial%3 == 0)
		b := randomOperand(rng, k, n, trial%3 == 1, trial%4 == 0)
		c := randomOperand(rng, m, n, false, false)
		want := c.Clone()
		want.AddMul(1.5, a, b)
		got := c.Clone()
		got.AddMulNumerics(1.5, a, b, Strict)
		if !bitIdentical(got, want) {
			t.Fatalf("trial %d (%d×%d·%d×%d): Strict AddMulNumerics differs from AddMul", trial, m, k, k, n)
		}
	}
}

// TestNumericsFastErrorBound is the tentpole oracle: across 100 random
// sizes/shapes (strided views and NaN/Inf/−0 specials included), the Fast
// GEMM must satisfy the documented componentwise bound against Strict,
//
//	|fast − strict| ≤ 2·γ(k+1)·(|C0| + |alpha|·|A|·|B|),
//
// and must be bit-identical to the AddMulScalarFMA reference on FMA
// hardware (to the Strict path elsewhere). Non-finite outputs must agree in
// class and sign between the modes.
func TestNumericsFastErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		m, k, n := pickDim(rng), pickDim(rng), pickDim(rng)
		strided := trial%3 == 0
		specials := trial%4 == 3
		alpha := []float64{1, -1, 0.5, 2.25}[trial%4]
		a := randomOperand(rng, m, k, strided, specials)
		b := randomOperand(rng, k, n, strided, false)
		c0 := randomOperand(rng, m, n, false, false)

		strict := c0.Clone()
		strict.AddMulNumerics(alpha, a, b, Strict)
		fast := c0.Clone()
		fast.AddMulNumerics(alpha, a, b, Fast)

		// Bitwise pin against the mode's reference semantics.
		ref := c0.Clone()
		if FastAvailable() {
			ref.AddMulScalarFMA(alpha, a, b)
		} else {
			ref.AddMulScalar(alpha, a, b)
		}
		if !bitIdentical(fast, ref) {
			t.Fatalf("trial %d (%d×%d·%d×%d, alpha=%g): Fast path is not bit-identical to its reference",
				trial, m, k, k, n, alpha)
		}

		// Componentwise bound vs Strict.
		absAB := New(m, n)
		absAB.addMulScalar(math.Abs(alpha), absClone(a), absClone(b))
		bound := 2 * gammaFactor(k+1)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s, f := strict.At(i, j), fast.At(i, j)
				if !sameClass(s, f) {
					t.Fatalf("trial %d elem (%d,%d): class mismatch strict=%v fast=%v", trial, i, j, s, f)
				}
				if math.IsNaN(s) || math.IsInf(s, 0) {
					continue
				}
				limit := bound * (math.Abs(c0.At(i, j)) + absAB.At(i, j))
				if diff := math.Abs(f - s); diff > limit {
					t.Fatalf("trial %d elem (%d,%d): |fast-strict|=%g exceeds bound %g (k=%d)",
						trial, i, j, diff, limit, k)
				}
			}
		}
	}
}

// TestNumericsFastParallelMatchesSerial pins that the parallel Fast path is
// bit-identical to the serial Fast path for any worker count (the row-band
// split may not change which elements take the edge kernel).
func TestNumericsFastParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{97, 64, 80}, {130, 130, 130}, {260, 33, 47}, {64, 260, 16}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randomOperand(rng, m, k, false, false)
		b := randomOperand(rng, k, n, false, false)
		c0 := randomOperand(rng, m, n, false, false)
		want := c0.Clone()
		want.AddMulNumerics(1, a, b, Fast)
		for _, workers := range []int{2, 3, 4, 7} {
			got := c0.Clone()
			got.AddMulParallelNumerics(1, a, b, workers, Fast)
			if !bitIdentical(got, want) {
				t.Fatalf("%d×%d·%d×%d workers=%d: parallel Fast differs from serial Fast", m, k, k, n, workers)
			}
		}
	}
}

// residualLU returns ‖P·A − L·U‖_F / (n·‖A‖_F).
func residualLU(a *Dense, f *LU) float64 {
	n, _ := a.Dims()
	pa := Mul(f.PermMatrix(), a)
	lu := Mul(f.L(), f.U())
	return frobNorm(Sub(pa, lu)) / (float64(n) * frobNorm(a))
}

func frobNorm(d *Dense) float64 {
	r, c := d.Dims()
	s := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := d.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// TestNumericsFastFactorizations verifies the relaxed-but-bounded contract
// on the blocked factorizations: under Fast mode, LU, Cholesky and QR must
// produce factors whose reconstruction residual is as small as Strict's (to
// a small constant factor), and the Fast factors must stay normwise close
// to the Strict factors.
func TestNumericsFastFactorizations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{33, 64, 97, 150, 260} {
		a := randomOperand(rng, n, n, false, false)
		// Diagonal dominance keeps the LU well conditioned, so the normwise
		// fast-vs-strict comparison is meaningful.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}

		sLU, err := BlockedFactorNumerics(a.Clone(), 32, Strict)
		if err != nil {
			t.Fatalf("n=%d: strict LU: %v", n, err)
		}
		fLU, err := BlockedFactorNumerics(a.Clone(), 32, Fast)
		if err != nil {
			t.Fatalf("n=%d: fast LU: %v", n, err)
		}
		rs, rf := residualLU(a, sLU), residualLU(a, fLU)
		if rf > 10*rs+1e-14 {
			t.Fatalf("n=%d: fast LU residual %g vs strict %g", n, rf, rs)
		}

		spd := RandomSPD(n, rng)
		sCh, err := BlockedFactorCholeskyNumerics(spd, 64, Strict)
		if err != nil {
			t.Fatalf("n=%d: strict Cholesky: %v", n, err)
		}
		fCh, err := BlockedFactorCholeskyNumerics(spd, 64, Fast)
		if err != nil {
			t.Fatalf("n=%d: fast Cholesky: %v", n, err)
		}
		den := float64(n) * frobNorm(spd)
		rs = frobNorm(Sub(spd, Mul(sCh.L, sCh.L.T()))) / den
		rf = frobNorm(Sub(spd, Mul(fCh.L, fCh.L.T()))) / den
		if rf > 10*rs+1e-14 {
			t.Fatalf("n=%d: fast Cholesky residual %g vs strict %g", n, rf, rs)
		}
		if d := frobNorm(Sub(fCh.L, sCh.L)) / frobNorm(sCh.L); d > 1e-10 {
			t.Fatalf("n=%d: fast Cholesky factor drifts %g from strict", n, d)
		}

		tall := randomOperand(rng, n+16, n, false, false)
		sQR := FactorQRBlockedNumerics(tall.Clone(), 32, Strict)
		fQR := FactorQRBlockedNumerics(tall.Clone(), 32, Fast)
		denQ := float64(n) * frobNorm(tall)
		rs = frobNorm(Sub(tall, Mul(sQR.Q(), sQR.R()))) / denQ
		rf = frobNorm(Sub(tall, Mul(fQR.Q(), fQR.R()))) / denQ
		if rf > 10*rs+1e-14 {
			t.Fatalf("n=%d: fast QR residual %g vs strict %g", n, rf, rs)
		}
		qtq := Mul(fQR.Q().T(), fQR.Q())
		for i := 0; i < n+16; i++ {
			qtq.Add(i, i, -1)
		}
		if d := frobNorm(qtq); d > 1e-11*float64(n) {
			t.Fatalf("n=%d: fast QR loses orthogonality: ‖QᵀQ−I‖=%g", n, d)
		}
	}
}

// TestSolveLowerUnitNumerics pins that the Strict mode is exactly
// SolveLowerUnit and that Fast stays within a forward-solve error bound of
// it.
func TestSolveLowerUnitNumerics(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{16, 65, 130, 257} {
		l := randomOperand(rng, n, n, false, false)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				l.Set(i, j, 0)
			}
			// Keep multipliers ≤ 1 in magnitude like a pivoted LU panel.
			for j := 0; j < i; j++ {
				l.Set(i, j, l.At(i, j)/float64(n))
			}
		}
		b := randomOperand(rng, n, 40, false, false)

		strict := b.Clone()
		l.SolveLowerUnitNumerics(strict, Strict)
		ref := b.Clone()
		l.SolveLowerUnit(ref)
		if !bitIdentical(strict, ref) {
			t.Fatalf("n=%d: Strict SolveLowerUnitNumerics differs from SolveLowerUnit", n)
		}

		fast := b.Clone()
		l.SolveLowerUnitNumerics(fast, Fast)
		// L·x_fast should reproduce b about as well as L·x_strict does.
		den := float64(n) * frobNorm(b)
		residual := func(x *Dense) float64 {
			lx := Mul(l, x)
			r, c := lx.Dims()
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					lx.Add(i, j, x.At(i, j)) // unit diagonal contribution
				}
			}
			return frobNorm(Sub(b, lx)) / den
		}
		rs, rf := residual(strict), residual(fast)
		if rf > 10*rs+1e-14 {
			t.Fatalf("n=%d: fast forward-solve residual %g vs strict %g", n, rf, rs)
		}
	}
}

// TestPeakGFlops sanity-checks the roofline estimator: positive, finite,
// and the Fast estimate is at least as high as Strict's on FMA hardware
// (fused tile retires twice the flops per instruction). Timing noise on
// loaded CI machines makes an exact ratio unassertable; positivity and
// finiteness are the contract.
func TestPeakGFlops(t *testing.T) {
	s := PeakGFlops(Strict)
	if !(s > 0) || math.IsInf(s, 0) {
		t.Fatalf("PeakGFlops(Strict) = %g", s)
	}
	f := PeakGFlops(Fast)
	if !(f > 0) || math.IsInf(f, 0) {
		t.Fatalf("PeakGFlops(Fast) = %g", f)
	}
	t.Logf("roofline estimate: strict %.2f GF/s, fast %.2f GF/s", s, f)
}
