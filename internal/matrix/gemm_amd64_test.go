//go:build amd64

package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// TestGemmGoTileMatchesAVX forces the pure-Go register tile (gemmHaveAVX is
// a variable precisely for this) and asserts the two micro-kernels agree bit
// for bit — the AVX kernel's unfused VMULPD/VADDPD pairs perform the same
// two IEEE roundings per lane as the Go code.
func TestGemmGoTileMatchesAVX(t *testing.T) {
	if !cpuHasAVX() {
		t.Skip("no AVX on this CPU")
	}
	saved := gemmHaveAVX
	defer func() { gemmHaveAVX = saved }()

	rng := rand.New(rand.NewSource(711))
	for it := 0; it < 40; it++ {
		m, k, n := pickDim(rng), pickDim(rng), pickDim(rng)
		if m*k*n > 1<<21 {
			m = 16
		}
		a := randomOperand(rng, m, k, false, it%6 == 0)
		b := randomOperand(rng, k, n, false, it%6 == 0)
		c0 := randomOperand(rng, m, n, false, false)

		gemmHaveAVX = true
		avx := c0.Clone()
		avx.addMulPacked(1.25, a, b)

		gemmHaveAVX = false
		plain := c0.Clone()
		plain.addMulPacked(1.25, a, b)
		gemmHaveAVX = saved

		if !bitIdentical(avx, plain) {
			t.Fatalf("it=%d m=%d k=%d n=%d: AVX tile differs from Go tile", it, m, k, n)
		}
	}
}

// TestGemmMicroAVXDirect exercises the assembly kernel on one exact tile,
// including NaN and signed-zero lanes.
func TestGemmMicroAVXDirect(t *testing.T) {
	if !cpuHasAVX() {
		t.Skip("no AVX on this CPU")
	}
	const kc = 5
	pa := make([]float64, 4*kc)
	pb := make([]float64, 8*kc)
	rng := rand.New(rand.NewSource(712))
	for i := range pa {
		pa[i] = rng.NormFloat64()
	}
	for i := range pb {
		pb[i] = rng.NormFloat64()
	}
	pa[2] = math.NaN()
	pb[3] = math.Copysign(0, -1)
	c := New(4, 8)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			c.Set(i, j, rng.NormFloat64())
		}
	}
	want := c.Clone()
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			acc := want.At(i, j)
			for k := 0; k < kc; k++ {
				acc += pa[4*k+i] * pb[8*k+j]
			}
			want.Set(i, j, acc)
		}
	}
	gemmMicroAVX4x8(&c.data[0], c.stride, &pa[0], &pb[0], kc)
	if !bitIdentical(c, want) {
		t.Fatal("AVX micro-kernel differs from reference accumulation")
	}
}

// TestGemmMicroFMADirect exercises the fused assembly kernel on one exact
// 6×8 tile against a math.FMA accumulation (the compiler lowers math.FMA to
// the same VFMADD instruction on this hardware), including NaN and
// signed-zero lanes.
func TestGemmMicroFMADirect(t *testing.T) {
	if !cpuHasAVX2FMA() {
		t.Skip("no AVX2+FMA on this CPU")
	}
	const kc = 7
	pa := make([]float64, 6*kc)
	pb := make([]float64, 8*kc)
	rng := rand.New(rand.NewSource(713))
	for i := range pa {
		pa[i] = rng.NormFloat64()
	}
	for i := range pb {
		pb[i] = rng.NormFloat64()
	}
	pa[4] = math.NaN()
	pb[5] = math.Copysign(0, -1)
	c := New(6, 8)
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			c.Set(i, j, rng.NormFloat64())
		}
	}
	want := c.Clone()
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			acc := want.At(i, j)
			for k := 0; k < kc; k++ {
				acc = math.FMA(pa[6*k+i], pb[8*k+j], acc)
			}
			want.Set(i, j, acc)
		}
	}
	gemmMicroFMA6x8(&c.data[0], c.stride, &pa[0], &pb[0], kc)
	if !bitIdentical(c, want) {
		t.Fatal("FMA micro-kernel differs from math.FMA reference accumulation")
	}
}

// TestFastFallbackWithoutFMA forces gemmHaveFMA off and asserts Fast mode
// degrades to the Strict packed path bit for bit — the documented behavior
// on hardware without AVX2+FMA (the error bound then holds with equality).
func TestFastFallbackWithoutFMA(t *testing.T) {
	saved := gemmHaveFMA
	defer func() { gemmHaveFMA = saved }()
	gemmHaveFMA = false

	rng := rand.New(rand.NewSource(714))
	for it := 0; it < 10; it++ {
		m, k, n := pickDim(rng), pickDim(rng), pickDim(rng)
		a := randomOperand(rng, m, k, false, it%3 == 0)
		b := randomOperand(rng, k, n, false, false)
		c0 := randomOperand(rng, m, n, false, false)
		strict := c0.Clone()
		strict.AddMulNumerics(1, a, b, Strict)
		fast := c0.Clone()
		fast.AddMulNumerics(1, a, b, Fast)
		if !bitIdentical(fast, strict) {
			t.Fatalf("it=%d m=%d k=%d n=%d: Fast without FMA is not the Strict path", it, m, k, n)
		}
	}
	if FastAvailable() {
		t.Fatal("FastAvailable must report false while gemmHaveFMA is forced off")
	}
}
