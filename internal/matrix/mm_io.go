package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes m in MatrixMarket array format (real, general),
// the interchange format used throughout the dense linear algebra world,
// so hetgrid's inputs and outputs interoperate with standard tooling.
// Entries are written in column-major order per the specification.
func WriteMatrixMarket(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix array real general\n"); err != nil {
		return err
	}
	r, c := m.Dims()
	if _, err := fmt.Fprintf(bw, "%d %d\n", r, c); err != nil {
		return err
	}
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			if _, err := fmt.Fprintf(bw, "%.17g\n", m.At(i, j)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket file holding a real matrix in
// either array (dense, column-major) or coordinate (sparse triplet,
// 1-indexed) format, with the general or symmetric symmetry qualifiers.
// Pattern and complex fields are rejected.
func ReadMatrixMarket(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	// Header line.
	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("matrix: not a MatrixMarket file: %q", sc.Text())
	}
	format := header[2]
	field := header[3]
	symmetry := "general"
	if len(header) >= 5 {
		symmetry = header[4]
	}
	if field != "real" && field != "integer" && field != "double" {
		return nil, fmt.Errorf("matrix: unsupported MatrixMarket field %q", field)
	}
	if symmetry != "general" && symmetry != "symmetric" {
		return nil, fmt.Errorf("matrix: unsupported MatrixMarket symmetry %q", symmetry)
	}
	// Skip comments, read the size line.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("matrix: missing MatrixMarket size line")
	}
	sizes := strings.Fields(sizeLine)
	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			return line, nil
		}
		return "", io.ErrUnexpectedEOF
	}
	switch format {
	case "array":
		if len(sizes) != 2 {
			return nil, fmt.Errorf("matrix: array size line %q", sizeLine)
		}
		rows, err1 := strconv.Atoi(sizes[0])
		cols, err2 := strconv.Atoi(sizes[1])
		if err1 != nil || err2 != nil || rows < 0 || cols < 0 {
			return nil, fmt.Errorf("matrix: bad array dimensions %q", sizeLine)
		}
		m := New(rows, cols)
		for j := 0; j < cols; j++ {
			iStart := 0
			if symmetry == "symmetric" {
				iStart = j // lower triangle stored
			}
			for i := iStart; i < rows; i++ {
				line, err := next()
				if err != nil {
					return nil, fmt.Errorf("matrix: truncated array data: %w", err)
				}
				v, err := strconv.ParseFloat(strings.Fields(line)[0], 64)
				if err != nil {
					return nil, fmt.Errorf("matrix: bad value %q: %v", line, err)
				}
				m.Set(i, j, v)
				if symmetry == "symmetric" && i != j {
					m.Set(j, i, v)
				}
			}
		}
		return m, nil
	case "coordinate":
		if len(sizes) != 3 {
			return nil, fmt.Errorf("matrix: coordinate size line %q", sizeLine)
		}
		rows, err1 := strconv.Atoi(sizes[0])
		cols, err2 := strconv.Atoi(sizes[1])
		nnz, err3 := strconv.Atoi(sizes[2])
		if err1 != nil || err2 != nil || err3 != nil || rows < 0 || cols < 0 || nnz < 0 {
			return nil, fmt.Errorf("matrix: bad coordinate dimensions %q", sizeLine)
		}
		m := New(rows, cols)
		for k := 0; k < nnz; k++ {
			line, err := next()
			if err != nil {
				return nil, fmt.Errorf("matrix: truncated coordinate data: %w", err)
			}
			fields := strings.Fields(line)
			if len(fields) < 3 {
				return nil, fmt.Errorf("matrix: bad coordinate entry %q", line)
			}
			i, err1 := strconv.Atoi(fields[0])
			j, err2 := strconv.Atoi(fields[1])
			v, err3 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("matrix: bad coordinate entry %q", line)
			}
			if i < 1 || i > rows || j < 1 || j > cols {
				return nil, fmt.Errorf("matrix: coordinate (%d,%d) outside %d×%d", i, j, rows, cols)
			}
			m.Set(i-1, j-1, v)
			if symmetry == "symmetric" && i != j {
				m.Set(j-1, i-1, v)
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("matrix: unsupported MatrixMarket format %q", format)
	}
}
