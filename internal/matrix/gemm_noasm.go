//go:build !amd64

package matrix

// gemmHaveAVX is constant false off amd64, letting the compiler drop the
// assembly dispatch arm entirely.
const gemmHaveAVX = false

// gemmHaveFMA is constant false off amd64: Fast mode runs the Strict
// packed path there (the error bound holds with equality).
const gemmHaveFMA = false

func gemmTileN() int { return gemmNR }

// gemmMicroAVX4x8 is never reachable when gemmHaveAVX is false.
func gemmMicroAVX4x8(c *float64, stride int, pa, pb *float64, kc int) {
	panic("matrix: AVX micro-kernel unavailable on this architecture")
}

// gemmMicroFMA6x8 is never reachable when gemmHaveFMA is false.
func gemmMicroFMA6x8(c *float64, stride int, pa, pb *float64, kc int) {
	panic("matrix: FMA micro-kernel unavailable on this architecture")
}
