package matrix

import (
	"fmt"
	"time"
)

// Numerics selects the arithmetic contract of the compute layer.
//
// Strict is the historical (and default) contract: every kernel is
// bit-identical to the scalar ikj reference — each product is a separate
// IEEE-rounded multiply followed by a separate rounded add, accumulated in
// strictly increasing k order. Strict results are reproducible across the
// scalar, packed, AVX, and parallel paths, which is what lets the
// distributed engine stay bit-identical to serial replays.
//
// Fast trades the bitwise contract for an error-bound contract: on CPUs
// with AVX2+FMA the packed GEMM dispatches to a fused 6×8 micro-kernel
// (one rounding per multiply-add instead of two, wider register tile,
// software prefetch). Each output element is still accumulated in strictly
// increasing k order, so the Fast result C̃ of an m×k·k×n update satisfies
// the componentwise bound
//
//	|C̃ - C| ≤ 2·γ(k+1)·(|C0| + |alpha|·|A|·|B|),  γ(t) = t·ε/(1-t·ε)
//
// against the Strict result C (both paths are within γ(k+1) of the exact
// value). On hardware without AVX2+FMA, Fast falls back to the Strict
// packed path, so the bound holds trivially. NaN/Inf semantics are
// preserved: a NaN in Strict is a NaN in Fast (fusion never un-poisons an
// operand), and ±Inf propagates with the same sign absent catastrophic
// overflow differences. Property tests in numerics_test.go verify the
// bound; DESIGN.md §10 documents the contract.
type Numerics int

const (
	// Strict is the bit-identical-to-scalar contract (the default).
	Strict Numerics = iota
	// Fast is the FMA-fused, error-bounded contract.
	Fast
)

func (n Numerics) String() string {
	switch n {
	case Strict:
		return "strict"
	case Fast:
		return "fast"
	default:
		return fmt.Sprintf("numerics(%d)", int(n))
	}
}

// FastAvailable reports whether the Fast contract actually changes the
// arithmetic on this CPU: true when the AVX2+FMA fused micro-kernel is
// usable. When false, Fast mode runs the Strict kernels (the error bound
// holds with equality).
func FastAvailable() bool { return gemmHaveFMA }

// AddMulNumerics is AddMul under an explicit numerics contract: Strict is
// exactly AddMul; Fast routes large updates through the FMA-fused
// micro-kernel when the CPU supports it. See Numerics for the error bound.
func (m *Dense) AddMulNumerics(alpha float64, a, b *Dense, mode Numerics) {
	m.checkAddMul(a, b)
	if alpha == 0 {
		return
	}
	m.addMulDispatchMode(alpha, a, b, mode)
}

// AddMulParallelNumerics is AddMulParallel under an explicit numerics
// contract. The row-band split is unchanged between modes: in Strict mode
// results stay bit-identical to the serial Strict path for any worker
// count, and in Fast mode every element is produced by exactly the same
// fused accumulation the serial Fast path performs.
func (m *Dense) AddMulParallelNumerics(alpha float64, a, b *Dense, workers int, mode Numerics) {
	m.checkAddMul(a, b)
	if alpha == 0 {
		return
	}
	m.addMulParallelMode(alpha, a, b, workers, mode)
}

// BlockedFactorNumerics is BlockedFactor under an explicit numerics
// contract: the panel factorization is always scalar (pivot choices are
// made on Strict arithmetic of the panel itself), while the U-panel
// triangular solve and the trailing rank-b update run under mode.
func BlockedFactorNumerics(a *Dense, blockSize int, mode Numerics) (*LU, error) {
	return blockedFactor(a, blockSize, mode)
}

// BlockedFactorCholeskyNumerics is BlockedFactorCholesky under an explicit
// numerics contract (the trailing symmetric update runs under mode).
func BlockedFactorCholeskyNumerics(a *Dense, blockSize int, mode Numerics) (*Cholesky, error) {
	return blockedFactorCholesky(a, blockSize, mode)
}

// FactorQRBlockedNumerics is FactorQRBlocked under an explicit numerics
// contract (the compact-WY trailing updates run under mode).
func FactorQRBlockedNumerics(a *Dense, blockSize int, mode Numerics) *QR {
	return factorQRBlocked(a, blockSize, mode)
}

// SolveLowerUnitNumerics is SolveLowerUnit under an explicit numerics
// contract: the off-diagonal GEMM updates of the blocked forward solve run
// under mode; the diagonal substitutions are always scalar.
func (m *Dense) SolveLowerUnitNumerics(b *Dense, mode Numerics) {
	if m.rows != m.cols || m.rows != b.rows {
		panic(fmt.Sprintf("matrix: SolveLowerUnit %d×%d with rhs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	m.solveLowerUnitMode(b, mode)
}

// PeakGFlops estimates the micro-kernel flop ceiling of this machine under
// the given numerics contract by timing the register-tile kernel on
// L1-resident packed panels — the practical single-core roofline that
// benchkernels reports measured rates against. The estimate costs a few
// tens of milliseconds.
func PeakGFlops(mode Numerics) float64 {
	const kc = gemmKC
	mr, nr := gemmMR, gemmTileN()
	if mode == Fast && gemmHaveFMA {
		mr, nr = gemmMRFMA, gemmNRFMA
	}
	pa := make([]float64, mr*kc)
	pb := make([]float64, nr*kc)
	for i := range pa {
		pa[i] = 1 + float64(i%7)*0.125
	}
	for i := range pb {
		pb[i] = 1 - float64(i%5)*0.0625
	}
	c := New(mr, nr)
	tile := func() {
		switch {
		case mode == Fast && gemmHaveFMA:
			gemmMicroFMA6x8(&c.data[0], c.stride, &pa[0], &pb[0], kc)
		case gemmHaveAVX && nr == gemmNRAVX:
			gemmMicroAVX4x8(&c.data[0], c.stride, &pa[0], &pb[0], kc)
		default:
			gemmMicro4x4(c, 0, 0, pa, pb, kc)
		}
	}
	// Warm up (page faults, turbo ramp), then time enough iterations to
	// dominate timer noise.
	for i := 0; i < 100; i++ {
		tile()
	}
	const iters = 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		tile()
	}
	elapsed := time.Since(start).Seconds()
	flops := 2 * float64(mr) * float64(nr) * float64(kc) * iters
	return flops / elapsed / 1e9
}
