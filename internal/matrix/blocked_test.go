package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockedMulMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for _, dims := range [][3]int{{5, 7, 3}, {64, 64, 64}, {100, 33, 67}, {1, 1, 1}, {65, 129, 31}} {
		a := Random(dims[0], dims[1], rng)
		b := Random(dims[1], dims[2], rng)
		want := Mul(a, b)
		for _, bs := range []int{0, 1, 8, 16, 1000} {
			got := BlockedMul(a, b, bs)
			if !got.EqualApprox(want, 1e-10) {
				t.Fatalf("dims %v block %d: blocked product differs", dims, bs)
			}
		}
	}
}

func TestBlockedMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlockedMul(New(2, 3), New(2, 3), 8)
}

func TestBlockedFactorMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	for _, n := range []int{1, 5, 32, 64, 70} {
		a := Random(n, n, rng)
		unblocked, err1 := Factor(a)
		for _, bs := range []int{0, 1, 7, 16, 1000} {
			blocked, err2 := BlockedFactor(a, bs)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("n=%d bs=%d: error mismatch %v vs %v", n, bs, err1, err2)
			}
			if err1 != nil {
				continue
			}
			// Same pivot choices → identical packed factors.
			if !blocked.LU.EqualApprox(unblocked.LU, 1e-10) {
				t.Fatalf("n=%d bs=%d: blocked factors differ from unblocked", n, bs)
			}
			for k := range blocked.Pivots {
				if blocked.Pivots[k] != unblocked.Pivots[k] {
					t.Fatalf("n=%d bs=%d: pivot %d differs (%d vs %d)",
						n, bs, k, blocked.Pivots[k], unblocked.Pivots[k])
				}
			}
		}
	}
}

func TestBlockedFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	f := func(seed int64) bool {
		n := 1 + int(uint(seed)%20)
		bs := 1 + int(uint(seed>>8)%8)
		a := Random(n, n, rng)
		fac, err := BlockedFactor(a, bs)
		if err != nil {
			return true // exactly singular random matrix: skip
		}
		pa := Mul(fac.PermMatrix(), a)
		return pa.EqualApprox(Mul(fac.L(), fac.U()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBlockedFactorSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	a := RandomWellConditioned(48, rng)
	want := Random(48, 2, rng)
	b := Mul(a, want)
	fac, err := BlockedFactor(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fac.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("blocked LU solve inaccurate")
	}
}

func TestBlockedFactorSingular(t *testing.T) {
	a := NewFromSlice(4, 4, []float64{
		1, 2, 3, 4,
		2, 4, 6, 8,
		0, 0, 1, 1,
		0, 0, 2, 2,
	})
	if _, err := BlockedFactor(a, 2); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func BenchmarkNaiveVsBlockedMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Random(192, 192, rng)
	y := Random(192, 192, rng)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Mul(x, y)
		}
	})
	b.Run("blocked64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BlockedMul(x, y, 64)
		}
	})
}

func BenchmarkNaiveVsBlockedLU(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := RandomWellConditioned(192, rng)
	b.Run("unblocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Factor(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blocked32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BlockedFactor(a, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
}
