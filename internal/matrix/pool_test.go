package matrix

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestParallelDo checks the chunked fan-out: every index runs exactly once
// for assorted worker/n combinations, including workers > n and the serial
// fallbacks.
func TestParallelDo(t *testing.T) {
	for _, tc := range [][2]int{{1, 5}, {2, 2}, {3, 10}, {4, 100}, {7, 3}, {16, 1}, {2, 0}} {
		workers, n := tc[0], tc[1]
		hits := make([]int32, n)
		var mu sync.Mutex
		ParallelDo(workers, n, func(i int) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
			}
		}
	}
}

// TestParallelDoPanic checks panic propagation from both the caller's own
// chunk (index 0) and a pool worker's chunk (last index).
func TestParallelDoPanic(t *testing.T) {
	for _, panicAt := range []int{0, 99} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("panic at index %d was swallowed", panicAt)
				}
				if s, ok := p.(string); !ok || s != "boom" {
					t.Fatalf("panic at index %d: got %v", panicAt, p)
				}
			}()
			ParallelDo(4, 100, func(i int) {
				if i == panicAt {
					panic("boom")
				}
			})
		}()
	}
}

// TestSolveLowerUnitParallel pins the parallel TRSM: bit-identical to the
// serial SolveLowerUnit for any worker count (columns are independent in a
// forward solve).
func TestSolveLowerUnitParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{8, 64, 130, 257} {
		l := randomOperand(rng, n, n, false, false)
		b := randomOperand(rng, n, 70, false, false)
		want := b.Clone()
		l.SolveLowerUnit(want)
		for _, workers := range []int{1, 2, 3, 4, 9} {
			got := b.Clone()
			l.SolveLowerUnitParallel(got, workers)
			if !bitIdentical(got, want) {
				t.Fatalf("n=%d workers=%d: parallel TRSM differs from serial", n, workers)
			}
		}
	}
}

// TestAddMulParallelPool re-pins the historical contract now that the
// parallel path runs on the persistent pool: bit-identical to serial AddMul
// for any worker count, specials included.
func TestAddMulParallelPool(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 24; trial++ {
		m, k, n := pickDim(rng), pickDim(rng), pickDim(rng)
		a := randomOperand(rng, m, k, trial%2 == 0, trial%4 == 0)
		b := randomOperand(rng, k, n, false, trial%5 == 0)
		c := randomOperand(rng, m, n, false, false)
		want := c.Clone()
		want.AddMul(-0.75, a, b)
		for _, workers := range []int{2, 4, 13} {
			got := c.Clone()
			got.AddMulParallel(-0.75, a, b, workers)
			if !bitIdentical(got, want) {
				t.Fatalf("trial %d (%d×%d·%d×%d) workers=%d: parallel differs from serial",
					trial, m, k, k, n, workers)
			}
		}
	}
}

// TestAddMulParallelZeroAlloc extends the serial zero-allocation guarantee
// to the parallel steady state: once the pool and packing buffers are warm,
// a parallel GEMM call allocates nothing — in either numerics mode.
func TestAddMulParallelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race matrix")
	}
	rng := rand.New(rand.NewSource(5))
	a := randomOperand(rng, 192, 96, false, false)
	b := randomOperand(rng, 96, 128, false, false)
	c := randomOperand(rng, 192, 128, false, false)
	for _, mode := range []Numerics{Strict, Fast} {
		// Warm the pool, the completion groups, and every worker's packing
		// buffers before measuring.
		for i := 0; i < 10; i++ {
			c.AddMulParallelNumerics(1, a, b, 4, mode)
		}
		avg := testing.AllocsPerRun(100, func() {
			c.AddMulParallelNumerics(1, a, b, 4, mode)
		})
		if avg != 0 {
			t.Errorf("mode=%v: parallel AddMul allocates %.2f per call in steady state", mode, avg)
		}
	}
}

// TestPoolNoGoroutineLeak hammers the parallel paths and checks the
// goroutine count stays at the pool's fixed size: the pool never grows, and
// per-call goroutine spawning is gone.
func TestPoolNoGoroutineLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomOperand(rng, 130, 64, false, false)
	b := randomOperand(rng, 64, 96, false, false)
	c := randomOperand(rng, 130, 96, false, false)
	c.AddMulParallel(1, a, b, 4) // ensure the pool is started
	base := runtime.NumGoroutine()
	for i := 0; i < 300; i++ {
		c.AddMulParallel(1, a, b, 2+i%6)
	}
	// A small slack absorbs unrelated runtime goroutines (GC workers etc.).
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Fatalf("goroutines grew from %d to %d over 300 parallel calls", base, got)
	}
}

// TestPoolConcurrentHammer drives the pool from many concurrent
// factorizations and mixed parallel kernels at once — the race detector
// (CI runs this package under -race) checks the pool's synchronization, and
// the bitwise/error assertions check results stay correct under contention.
func TestPoolConcurrentHammer(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			mode := Strict
			if g%2 == 1 {
				mode = Fast
			}
			a := randomOperand(rng, 97, 64, false, false)
			b := randomOperand(rng, 64, 70, false, false)
			c := randomOperand(rng, 97, 70, false, false)
			want := c.Clone()
			want.AddMulNumerics(1, a, b, mode)
			for iter := 0; iter < 20; iter++ {
				got := c.Clone()
				got.AddMulParallelNumerics(1, a, b, 1+iter%5, mode)
				if !bitIdentical(got, want) {
					errs <- fmt.Errorf("goroutine %d iter %d: parallel result diverged", g, iter)
					return
				}
				sq := randomOperand(rng, 70, 70, false, false)
				for i := 0; i < 70; i++ {
					sq.Add(i, i, 70)
				}
				if _, err := BlockedFactorNumerics(sq, 32, mode); err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: LU: %v", g, iter, err)
					return
				}
				ParallelDo(3, 50, func(int) {})
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolStats sanity-checks the instrumentation counters the obs layer
// exports: after parallel work the pool reports a fixed worker count and a
// non-decreasing submit counter.
func TestPoolStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomOperand(rng, 130, 64, false, false)
	b := randomOperand(rng, 64, 96, false, false)
	c := randomOperand(rng, 130, 96, false, false)
	c.AddMulParallel(1, a, b, 4)
	workers, submitted, inline, _ := PoolStats()
	if workers < 2 {
		t.Fatalf("pool reports %d workers after use", workers)
	}
	if submitted+inline == 0 {
		t.Fatalf("no tasks recorded after a parallel call (submitted=%d inline=%d)", submitted, inline)
	}
	c.AddMulParallel(1, a, b, 4)
	_, submitted2, inline2, _ := PoolStats()
	if submitted2+inline2 <= submitted+inline {
		t.Fatalf("task counters did not advance: %d+%d -> %d+%d", submitted, inline, submitted2, inline2)
	}
	if FastAvailable() {
		_, _, _, fastBefore := PoolStats()
		c.AddMulNumerics(1, a, b, Fast)
		_, _, _, fastAfter := PoolStats()
		if fastAfter <= fastBefore {
			t.Fatalf("fast-dispatch counter did not advance: %d -> %d", fastBefore, fastAfter)
		}
	}
}
