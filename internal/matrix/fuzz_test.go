package matrix

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser: arbitrary inputs must produce
// either a valid matrix or an error — never a panic — and valid outputs
// must round-trip through the writer.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 5\n2 3 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 3\n2 1 7\n")
	f.Add("%%MatrixMarket matrix array real symmetric\n2 2\n1\n2\n3\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix array real general\n1000000000 1000000000\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Guard against adversarial dimension lines allocating huge
		// matrices: cap the parse to small inputs.
		if len(input) > 1<<16 {
			return
		}
		// Reject inputs whose declared dimensions are absurd relative to
		// the data; the parser itself must not crash either way, but we
		// avoid multi-gigabyte allocations in the fuzz loop.
		if declaresHugeDims(input) {
			return
		}
		m, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("failed to re-serialize parsed matrix: %v", err)
		}
		again, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !again.Equal(m) {
			t.Fatal("round trip changed the matrix")
		}
	})
}

// declaresHugeDims conservatively detects dimension lines whose product
// would allocate more than ~1M entries.
func declaresHugeDims(input string) bool {
	for _, line := range strings.Split(input, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return false
		}
		total := 1.0
		for _, fld := range fields[:2] {
			n := 0.0
			for _, ch := range fld {
				if ch < '0' || ch > '9' {
					return false
				}
				n = n*10 + float64(ch-'0')
				if n > 1e9 {
					return true
				}
			}
			total *= n
		}
		return total > 1e6
	}
	return false
}
