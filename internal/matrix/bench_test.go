package matrix

import (
	"math/rand"
	"testing"
)

func benchMatrices(n int) (*Dense, *Dense) {
	rng := rand.New(rand.NewSource(1))
	return Random(n, n, rng), Random(n, n, rng)
}

func BenchmarkMul(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			x, y := benchMatrices(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Mul(x, y)
			}
		})
	}
}

func BenchmarkAddMul(b *testing.B) {
	x, y := benchMatrices(64)
	c := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddMul(1, x, y)
	}
}

func BenchmarkLUFactor(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			a := RandomWellConditioned(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLUSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := RandomWellConditioned(64, rng)
	rhs := Random(64, 1, rng)
	f, err := Factor(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRFactor(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			a := Random(n, n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FactorQR(a)
			}
		})
	}
}

func BenchmarkCholeskyFactor(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			a := RandomSPD(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := FactorCholesky(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFrobeniusNorm(b *testing.B) {
	a, _ := benchMatrices(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.FrobeniusNorm()
	}
}

func sizeLabel(n int) string {
	switch {
	case n < 10:
		return "n00" + string(rune('0'+n))
	case n < 100:
		return "n0" + string(rune('0'+n/10)) + string(rune('0'+n%10))
	default:
		return "n" + string(rune('0'+n/100)) + string(rune('0'+(n/10)%10)) + string(rune('0'+n%10))
	}
}
