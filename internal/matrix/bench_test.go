package matrix

import (
	"math/rand"
	"testing"
)

func benchMatrices(n int) (*Dense, *Dense) {
	rng := rand.New(rand.NewSource(1))
	return Random(n, n, rng), Random(n, n, rng)
}

func BenchmarkMul(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			x, y := benchMatrices(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Mul(x, y)
			}
		})
	}
}

func BenchmarkAddMul(b *testing.B) {
	x, y := benchMatrices(64)
	c := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddMul(1, x, y)
	}
}

// BenchmarkGEMMModes compares the three GEMM execution paths; the tracked
// baseline across the full size sweep lives in BENCH_kernels.json
// (cmd/benchkernels).
func BenchmarkGEMMModes(b *testing.B) {
	for _, n := range []int{64, 256} {
		x, y := benchMatrices(n)
		c := New(n, n)
		b.Run("scalar/"+sizeLabel(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.AddMulScalar(1, x, y)
			}
		})
		b.Run("packed/"+sizeLabel(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.AddMul(1, x, y)
			}
		})
		b.Run("parallel/"+sizeLabel(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.AddMulParallel(1, x, y, 4)
			}
		})
	}
}

func BenchmarkTRSMModes(b *testing.B) {
	const n = 128
	rng := rand.New(rand.NewSource(6))
	l := New(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < i; j++ {
			l.Set(i, j, 2*rng.Float64()-1)
		}
	}
	rhs := Random(n, n, rng)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.SolveLowerUnitScalar(rhs.Clone())
		}
	})
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.SolveLowerUnit(rhs.Clone())
		}
	})
}

func BenchmarkLUFactor(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			a := RandomWellConditioned(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLUSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := RandomWellConditioned(64, rng)
	rhs := Random(64, 1, rng)
	f, err := Factor(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRFactor(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			a := Random(n, n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FactorQR(a)
			}
		})
	}
}

func BenchmarkCholeskyFactor(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			a := RandomSPD(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := FactorCholesky(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFrobeniusNorm(b *testing.B) {
	a, _ := benchMatrices(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.FrobeniusNorm()
	}
}

func sizeLabel(n int) string {
	switch {
	case n < 10:
		return "n00" + string(rune('0'+n))
	case n < 100:
		return "n0" + string(rune('0'+n/10)) + string(rune('0'+n%10))
	default:
		return "n" + string(rune('0'+n/100)) + string(rune('0'+(n/10)%10)) + string(rune('0'+n%10))
	}
}
