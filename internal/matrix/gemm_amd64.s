//go:build amd64

#include "textflag.h"

// func cpuHasAVX() bool
//
// CPUID.1:ECX bit 27 (OSXSAVE) and bit 28 (AVX) must be set, then
// XGETBV(0) must report XCR0 bits 1 and 2 (XMM and YMM state enabled by
// the OS).
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVQ	$1, AX
	CPUID
	ANDL	$0x18000000, CX
	CMPL	CX, $0x18000000
	JNE	noavx
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

// func cpuHasAVX2FMA() bool
//
// The fused micro-kernel needs FMA (CPUID.1:ECX bit 12), AVX + OSXSAVE
// (bits 28/27), AVX2 (CPUID.(EAX=7,ECX=0):EBX bit 5), and the OS must
// enable XMM+YMM state in XCR0 (XGETBV bits 1 and 2).
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVQ	$0, AX
	CPUID
	CMPL	AX, $7              // leaf 7 must exist
	JLT	nofma
	MOVQ	$1, AX
	CPUID
	ANDL	$0x18001000, CX     // FMA | OSXSAVE | AVX
	CMPL	CX, $0x18001000
	JNE	nofma
	MOVQ	$7, AX
	XORL	CX, CX
	CPUID
	ANDL	$0x20, BX           // AVX2
	JZ	nofma
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX              // XMM and YMM state enabled
	CMPL	AX, $6
	JNE	nofma
	MOVB	$1, ret+0(FP)
	RET
nofma:
	MOVB	$0, ret+0(FP)
	RET

// func gemmMicroAVX4x8(c *float64, stride int, pa, pb *float64, kc int)
//
// Register tile: Y0..Y7 hold the 4×8 block of C (two YMM per row) across
// the whole k loop. Per k step: two 8-wide B loads, four A broadcasts, and
// eight VMULPD/VADDPD pairs. No FMA — the separate multiply and add
// roundings keep the kernel bit-identical to the scalar reference.
TEXT ·gemmMicroAVX4x8(SB), NOSPLIT, $0-40
	MOVQ	c+0(FP), DI
	MOVQ	stride+8(FP), SI
	MOVQ	pa+16(FP), R8
	MOVQ	pb+24(FP), R9
	MOVQ	kc+32(FP), CX
	SHLQ	$3, SI              // stride in bytes
	LEAQ	(DI)(SI*2), R10     // row 2

	VMOVUPD	(DI), Y0            // C row 0
	VMOVUPD	32(DI), Y1
	VMOVUPD	(DI)(SI*1), Y2      // C row 1
	VMOVUPD	32(DI)(SI*1), Y3
	VMOVUPD	(R10), Y4           // C row 2
	VMOVUPD	32(R10), Y5
	VMOVUPD	(R10)(SI*1), Y6     // C row 3
	VMOVUPD	32(R10)(SI*1), Y7

kloop:
	VMOVUPD	(R9), Y8            // B[k, 0:4]
	VMOVUPD	32(R9), Y9          // B[k, 4:8]
	VBROADCASTSD	(R8), Y10   // A[0, k]
	VBROADCASTSD	8(R8), Y11  // A[1, k]
	VMULPD	Y8, Y10, Y12
	VADDPD	Y12, Y0, Y0
	VMULPD	Y9, Y10, Y13
	VADDPD	Y13, Y1, Y1
	VMULPD	Y8, Y11, Y14
	VADDPD	Y14, Y2, Y2
	VMULPD	Y9, Y11, Y15
	VADDPD	Y15, Y3, Y3
	VBROADCASTSD	16(R8), Y10 // A[2, k]
	VBROADCASTSD	24(R8), Y11 // A[3, k]
	VMULPD	Y8, Y10, Y12
	VADDPD	Y12, Y4, Y4
	VMULPD	Y9, Y10, Y13
	VADDPD	Y13, Y5, Y5
	VMULPD	Y8, Y11, Y14
	VADDPD	Y14, Y6, Y6
	VMULPD	Y9, Y11, Y15
	VADDPD	Y15, Y7, Y7
	ADDQ	$32, R8
	ADDQ	$64, R9
	DECQ	CX
	JNE	kloop

	VMOVUPD	Y0, (DI)
	VMOVUPD	Y1, 32(DI)
	VMOVUPD	Y2, (DI)(SI*1)
	VMOVUPD	Y3, 32(DI)(SI*1)
	VMOVUPD	Y4, (R10)
	VMOVUPD	Y5, 32(R10)
	VMOVUPD	Y6, (R10)(SI*1)
	VMOVUPD	Y7, 32(R10)(SI*1)
	VZEROUPPER
	RET

// func gemmMicroFMA6x8(c *float64, stride int, pa, pb *float64, kc int)
//
// The Fast-mode register tile: Y0..Y11 hold the 6×8 block of C (two YMM
// per row) across the whole k loop. Per k step: two 8-wide B loads, six A
// broadcasts (alternating Y14/Y15 to break the dependency chain), and
// twelve VFMADD231PD — one rounding per multiply-add, which is the whole
// point of Fast mode. A 6×8 tile is the widest that fits the VEX register
// budget (12 accumulators + 2 B + 2 broadcast = 16 YMM); software
// prefetch walks the packed panels a few k steps ahead. Accumulation is
// still strictly increasing in k, so the result is bit-identical to the
// math.FMA scalar reference AddMulScalarFMA. pa advances 6 and pb 8
// elements per k step. kc must be ≥ 1.
TEXT ·gemmMicroFMA6x8(SB), NOSPLIT, $0-40
	MOVQ	c+0(FP), DI
	MOVQ	stride+8(FP), SI
	MOVQ	pa+16(FP), R8
	MOVQ	pb+24(FP), R9
	MOVQ	kc+32(FP), CX
	SHLQ	$3, SI              // stride in bytes
	LEAQ	(DI)(SI*2), R10     // row 2
	LEAQ	(DI)(SI*4), R11     // row 4

	VMOVUPD	(DI), Y0            // C row 0
	VMOVUPD	32(DI), Y1
	VMOVUPD	(DI)(SI*1), Y2      // C row 1
	VMOVUPD	32(DI)(SI*1), Y3
	VMOVUPD	(R10), Y4           // C row 2
	VMOVUPD	32(R10), Y5
	VMOVUPD	(R10)(SI*1), Y6     // C row 3
	VMOVUPD	32(R10)(SI*1), Y7
	VMOVUPD	(R11), Y8           // C row 4
	VMOVUPD	32(R11), Y9
	VMOVUPD	(R11)(SI*1), Y10    // C row 5
	VMOVUPD	32(R11)(SI*1), Y11

fmakloop:
	VMOVUPD	(R9), Y12           // B[k, 0:4]
	VMOVUPD	32(R9), Y13         // B[k, 4:8]
	PREFETCHT0	384(R8)         // packed A, 8 k steps ahead
	PREFETCHT0	512(R9)         // packed B, 8 k steps ahead
	VBROADCASTSD	(R8), Y14   // A[0, k]
	VBROADCASTSD	8(R8), Y15  // A[1, k]
	VFMADD231PD	Y12, Y14, Y0
	VFMADD231PD	Y13, Y14, Y1
	VFMADD231PD	Y12, Y15, Y2
	VFMADD231PD	Y13, Y15, Y3
	VBROADCASTSD	16(R8), Y14 // A[2, k]
	VBROADCASTSD	24(R8), Y15 // A[3, k]
	VFMADD231PD	Y12, Y14, Y4
	VFMADD231PD	Y13, Y14, Y5
	VFMADD231PD	Y12, Y15, Y6
	VFMADD231PD	Y13, Y15, Y7
	VBROADCASTSD	32(R8), Y14 // A[4, k]
	VBROADCASTSD	40(R8), Y15 // A[5, k]
	VFMADD231PD	Y12, Y14, Y8
	VFMADD231PD	Y13, Y14, Y9
	VFMADD231PD	Y12, Y15, Y10
	VFMADD231PD	Y13, Y15, Y11
	ADDQ	$48, R8
	ADDQ	$64, R9
	DECQ	CX
	JNE	fmakloop

	VMOVUPD	Y0, (DI)
	VMOVUPD	Y1, 32(DI)
	VMOVUPD	Y2, (DI)(SI*1)
	VMOVUPD	Y3, 32(DI)(SI*1)
	VMOVUPD	Y4, (R10)
	VMOVUPD	Y5, 32(R10)
	VMOVUPD	Y6, (R10)(SI*1)
	VMOVUPD	Y7, 32(R10)(SI*1)
	VMOVUPD	Y8, (R11)
	VMOVUPD	Y9, 32(R11)
	VMOVUPD	Y10, (R11)(SI*1)
	VMOVUPD	Y11, 32(R11)(SI*1)
	VZEROUPPER
	RET
