//go:build amd64

#include "textflag.h"

// func cpuHasAVX() bool
//
// CPUID.1:ECX bit 27 (OSXSAVE) and bit 28 (AVX) must be set, then
// XGETBV(0) must report XCR0 bits 1 and 2 (XMM and YMM state enabled by
// the OS).
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVQ	$1, AX
	CPUID
	ANDL	$0x18000000, CX
	CMPL	CX, $0x18000000
	JNE	noavx
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

// func gemmMicroAVX4x8(c *float64, stride int, pa, pb *float64, kc int)
//
// Register tile: Y0..Y7 hold the 4×8 block of C (two YMM per row) across
// the whole k loop. Per k step: two 8-wide B loads, four A broadcasts, and
// eight VMULPD/VADDPD pairs. No FMA — the separate multiply and add
// roundings keep the kernel bit-identical to the scalar reference.
TEXT ·gemmMicroAVX4x8(SB), NOSPLIT, $0-40
	MOVQ	c+0(FP), DI
	MOVQ	stride+8(FP), SI
	MOVQ	pa+16(FP), R8
	MOVQ	pb+24(FP), R9
	MOVQ	kc+32(FP), CX
	SHLQ	$3, SI              // stride in bytes
	LEAQ	(DI)(SI*2), R10     // row 2

	VMOVUPD	(DI), Y0            // C row 0
	VMOVUPD	32(DI), Y1
	VMOVUPD	(DI)(SI*1), Y2      // C row 1
	VMOVUPD	32(DI)(SI*1), Y3
	VMOVUPD	(R10), Y4           // C row 2
	VMOVUPD	32(R10), Y5
	VMOVUPD	(R10)(SI*1), Y6     // C row 3
	VMOVUPD	32(R10)(SI*1), Y7

kloop:
	VMOVUPD	(R9), Y8            // B[k, 0:4]
	VMOVUPD	32(R9), Y9          // B[k, 4:8]
	VBROADCASTSD	(R8), Y10   // A[0, k]
	VBROADCASTSD	8(R8), Y11  // A[1, k]
	VMULPD	Y8, Y10, Y12
	VADDPD	Y12, Y0, Y0
	VMULPD	Y9, Y10, Y13
	VADDPD	Y13, Y1, Y1
	VMULPD	Y8, Y11, Y14
	VADDPD	Y14, Y2, Y2
	VMULPD	Y9, Y11, Y15
	VADDPD	Y15, Y3, Y3
	VBROADCASTSD	16(R8), Y10 // A[2, k]
	VBROADCASTSD	24(R8), Y11 // A[3, k]
	VMULPD	Y8, Y10, Y12
	VADDPD	Y12, Y4, Y4
	VMULPD	Y9, Y10, Y13
	VADDPD	Y13, Y5, Y5
	VMULPD	Y8, Y11, Y14
	VADDPD	Y14, Y6, Y6
	VMULPD	Y9, Y11, Y15
	VADDPD	Y15, Y7, Y7
	ADDQ	$32, R8
	ADDQ	$64, R9
	DECQ	CX
	JNE	kloop

	VMOVUPD	Y0, (DI)
	VMOVUPD	Y1, 32(DI)
	VMOVUPD	Y2, (DI)(SI*1)
	VMOVUPD	Y3, 32(DI)(SI*1)
	VMOVUPD	Y4, (R10)
	VMOVUPD	Y5, 32(R10)
	VMOVUPD	Y6, (R10)(SI*1)
	VMOVUPD	Y7, 32(R10)(SI*1)
	VZEROUPPER
	RET
