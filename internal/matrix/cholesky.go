package matrix

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular Cholesky factor of a symmetric
// positive definite matrix: A = L·Lᵀ.
type Cholesky struct {
	L *Dense
}

// ErrNotPositiveDefinite is returned when a pivot is non-positive during
// Cholesky factorization.
var ErrNotPositiveDefinite = fmt.Errorf("matrix: not positive definite: %w", ErrSingular)

// FactorCholesky computes the lower Cholesky factor of a. Only the lower
// triangle of a is read; the input is not modified.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: Cholesky of non-square %d×%d", n, c))
	}
	l := New(n, n)
	for j := 0; j < n; j++ {
		// Diagonal: l_jj = sqrt(a_jj - Σ_k l_jk²).
		sum := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			sum -= v * v
		}
		if sum <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		d := math.Sqrt(sum)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{L: l}, nil
}

// Solve solves A·x = b for each column of b via the factor.
func (f *Cholesky) Solve(b *Dense) (*Dense, error) {
	n, _ := f.L.Dims()
	if b.rows != n {
		panic(fmt.Sprintf("matrix: Cholesky solve with rhs %d×%d for order %d", b.rows, b.cols, n))
	}
	x := b.Clone()
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		d := f.L.At(i, i)
		for j := 0; j < x.cols; j++ {
			sum := x.At(i, j)
			for k := 0; k < i; k++ {
				sum -= f.L.At(i, k) * x.At(k, j)
			}
			x.Set(i, j, sum/d)
		}
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		d := f.L.At(i, i)
		for j := 0; j < x.cols; j++ {
			sum := x.At(i, j)
			for k := i + 1; k < n; k++ {
				sum -= f.L.At(k, i) * x.At(k, j)
			}
			x.Set(i, j, sum/d)
		}
	}
	return x, nil
}

// Det returns the determinant of the factored matrix (product of squared
// diagonal entries of L).
func (f *Cholesky) Det() float64 {
	n, _ := f.L.Dims()
	det := 1.0
	for i := 0; i < n; i++ {
		d := f.L.At(i, i)
		det *= d * d
	}
	return det
}

// BlockedFactorCholesky computes the lower Cholesky factor with the
// right-looking blocked algorithm (LAPACK potrf structure): the diagonal
// block is factored unblocked, the sub-diagonal panel is solved against
// L(diag)ᵀ from the right, and the trailing submatrix receives a symmetric
// rank-blockSize update through the packed GEMM kernel — so almost all
// flops run at level-3 speed. The result agrees with FactorCholesky to
// rounding (the update order differs); the input is not modified.
// blockSize ≤ 0 selects a default.
func BlockedFactorCholesky(a *Dense, blockSize int) (*Cholesky, error) {
	return blockedFactorCholesky(a, blockSize, Strict)
}

// blockedFactorCholesky is BlockedFactorCholesky under an explicit
// numerics contract: the diagonal factor and panel solve stay scalar, the
// trailing symmetric rank-blockSize update runs under mode.
func blockedFactorCholesky(a *Dense, blockSize int, mode Numerics) (*Cholesky, error) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: Cholesky of non-square %d×%d", n, c))
	}
	if blockSize <= 0 {
		blockSize = 64
	}
	l := a.Clone()
	for k0 := 0; k0 < n; k0 += blockSize {
		k1 := min(k0+blockSize, n)
		diag := l.Slice(k0, k1, k0, k1)
		f, err := FactorCholesky(diag)
		if err != nil {
			return nil, err
		}
		diag.CopyFrom(f.L)
		if k1 == n {
			break
		}
		// Panel: L(i,k) = A(i,k)·L(k,k)^{-T}.
		panel := l.Slice(k1, n, k0, k1)
		if err := panel.SolveUpperRight(f.L.T()); err != nil {
			return nil, err
		}
		// Trailing: A(trailing) -= panel·panelᵀ. The update covers the full
		// square — the trailing block stays symmetric, so the upper half is
		// simply overwritten again by later steps and zeroed below.
		l.Slice(k1, n, k1, n).AddMulNumerics(-1, panel, panel.T(), mode)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	return &Cholesky{L: l}, nil
}

// RandomSPD returns a random symmetric positive definite matrix of order n:
// M·Mᵀ + n·I for a random M.
func RandomSPD(n int, rng interface{ Float64() float64 }) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 2*rng.Float64()-1)
		}
	}
	spd := Mul(m, m.T())
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}
