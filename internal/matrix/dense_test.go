package matrix

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("entry (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromSliceRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("unexpected layout: %v", m)
	}
	// The slice must be copied, not aliased.
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("NewFromSlice aliased the input slice")
	}
}

func TestNewFromSliceBadLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-size slice")
		}
	}()
	NewFromSlice(2, 3, []float64{1, 2})
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %d×%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	empty := NewFromRows(nil)
	if empty.Rows() != 0 || empty.Cols() != 0 {
		t.Fatal("NewFromRows(nil) not empty")
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(4) entry (%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 5)
	m.Add(1, 0, 2.5)
	if m.At(1, 0) != 7.5 {
		t.Fatalf("got %v want 7.5", m.At(1, 0))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	n := m.Clone()
	n.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with the original")
	}
	if !m.EqualApprox(m.Clone(), 0) {
		t.Fatal("Clone not equal to original")
	}
}

func TestSliceViewShares(t *testing.T) {
	m := NewFromSlice(4, 4, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	v := m.Slice(1, 3, 1, 3)
	if v.Rows() != 2 || v.Cols() != 2 {
		t.Fatalf("slice dims %d×%d", v.Rows(), v.Cols())
	}
	if v.At(0, 0) != 6 || v.At(1, 1) != 11 {
		t.Fatalf("slice content wrong: %v", v)
	}
	v.Set(0, 0, -1)
	if m.At(1, 1) != -1 {
		t.Fatal("slice write not visible in parent")
	}
	// A clone of a view must be compact and independent.
	c := v.Clone()
	c.Set(1, 1, 100)
	if m.At(2, 2) != 11 {
		t.Fatal("clone of view aliased parent")
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Slice(0, 4, 0, 2)
}

func TestTranspose(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T dims %d×%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := 1 + int(seed%7&0x7)
		c := 1 + int((seed>>3)%7&0x7)
		m := Random(r, c, rng)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleZero(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatalf("Scale: got %v", m.At(1, 1))
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero left nonzero entries")
	}
}

func TestEqualApprox(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 2, []float64{1, 2, 3, 4.0000001})
	if !a.EqualApprox(b, 1e-6) {
		t.Fatal("should be approx equal")
	}
	if a.EqualApprox(b, 1e-9) {
		t.Fatal("should not be equal at 1e-9")
	}
	if a.EqualApprox(New(2, 3), 1) {
		t.Fatal("different shapes compared equal")
	}
}

func TestNorms(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{3, -4, 0, 0})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v want 5", got)
	}
	if got := m.InfNorm(); got != 7 {
		t.Fatalf("InfNorm = %v want 7", got)
	}
	if got := m.OneNorm(); got != 4 {
		t.Fatalf("OneNorm = %v want 4", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v want 4", got)
	}
	if New(0, 0).FrobeniusNorm() != 0 {
		t.Fatal("empty Frobenius != 0")
	}
}

func TestFrobeniusNoOverflow(t *testing.T) {
	m := NewFromSlice(1, 2, []float64{1e200, 1e200})
	got := m.FrobeniusNorm()
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Frobenius overflowed: %v", got)
	}
}

func TestSwapRows(t *testing.T) {
	m := NewFromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	m.SwapRows(0, 2)
	if m.At(0, 0) != 5 || m.At(2, 1) != 2 {
		t.Fatalf("SwapRows wrong: %v", m)
	}
	m.SwapRows(1, 1) // no-op must be safe
	if m.At(1, 0) != 3 {
		t.Fatal("self-swap corrupted row")
	}
}

func TestRawRowAliases(t *testing.T) {
	m := New(2, 3)
	row := m.RawRow(1)
	row[2] = 9
	if m.At(1, 2) != 9 {
		t.Fatal("RawRow is not a live view")
	}
}

func TestStringFormat(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	s := m.String()
	if !strings.Contains(s, "1.0000") || !strings.Contains(s, "4.0000") {
		t.Fatalf("String output unexpected: %q", s)
	}
	if strings.Count(s, "\n") != 2 {
		t.Fatalf("String should have one line per row: %q", s)
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	dst := New(2, 2)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom mismatch")
	}
	// Into a view.
	big := New(4, 4)
	big.Slice(1, 3, 2, 4).CopyFrom(src)
	if big.At(1, 2) != 1 || big.At(2, 3) != 4 {
		t.Fatal("CopyFrom into view failed")
	}
	if big.At(0, 0) != 0 || big.At(3, 3) != 0 {
		t.Fatal("CopyFrom into view touched outside the view")
	}
}
