package matrix

import (
	"fmt"
	"math"
)

// FactorNoPivot performs an unpivoted LU elimination of a square matrix in
// place, packing L (implicit unit diagonal) below the diagonal and U on and
// above it. Callers must supply matrices that are safely factorable without
// pivoting (e.g. diagonally dominant); ErrSingular is returned on a zero
// pivot. The blocked distributed kernels use this as their diagonal-block
// factor step.
func FactorNoPivot(a *Dense) error {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("matrix: FactorNoPivot of non-square %d×%d", n, c))
	}
	for k := 0; k < n; k++ {
		piv := a.data[k*a.stride+k]
		if piv == 0 {
			return ErrSingular
		}
		for i := k + 1; i < n; i++ {
			l := a.data[i*a.stride+k] / piv
			a.data[i*a.stride+k] = l
			if l == 0 {
				continue
			}
			urow := a.data[k*a.stride+k+1 : k*a.stride+n]
			irow := a.data[i*a.stride+k+1 : i*a.stride+n]
			for j := range irow {
				irow[j] -= l * urow[j]
			}
		}
	}
	return nil
}

// LU holds an LU factorization with partial pivoting: P*A = L*U, where L is
// unit lower triangular, U is upper triangular, and P is the permutation
// recorded in Pivots (row i of the factored matrix came from row Perm[i] of
// A).
type LU struct {
	// LU stores L (strictly lower, unit diagonal implicit) and U (upper)
	// packed in a single matrix.
	LU *Dense
	// Pivots[k] is the row index that was swapped with row k at step k,
	// in LAPACK ipiv convention.
	Pivots []int
	// signDet is +1 or -1 according to the parity of the row swaps.
	signDet float64
}

// Factor computes the LU factorization of a with partial pivoting. The input
// is not modified. Returns ErrSingular if a pivot column is exactly zero;
// the partial factorization is still returned for inspection.
func Factor(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: LU of non-square %d×%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	sign := 1.0
	var firstErr error
	for k := 0; k < n; k++ {
		// Find pivot: largest |value| in column k at or below the diagonal.
		p := k
		max := math.Abs(lu.data[k*lu.stride+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*lu.stride+k]); v > max {
				max, p = v, i
			}
		}
		piv[k] = p
		if max == 0 {
			if firstErr == nil {
				firstErr = ErrSingular
			}
			continue
		}
		if p != k {
			lu.SwapRows(p, k)
			sign = -sign
		}
		pivot := lu.data[k*lu.stride+k]
		for i := k + 1; i < n; i++ {
			l := lu.data[i*lu.stride+k] / pivot
			lu.data[i*lu.stride+k] = l
			if l == 0 {
				continue
			}
			urow := lu.data[k*lu.stride+k+1 : k*lu.stride+n]
			irow := lu.data[i*lu.stride+k+1 : i*lu.stride+n]
			for j := range irow {
				irow[j] -= l * urow[j]
			}
		}
	}
	return &LU{LU: lu, Pivots: piv, signDet: sign}, firstErr
}

// L returns the unit lower triangular factor as a new matrix.
func (f *LU) L() *Dense {
	n := f.LU.rows
	l := Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.data[i*l.stride+j] = f.LU.data[i*f.LU.stride+j]
		}
	}
	return l
}

// U returns the upper triangular factor as a new matrix.
func (f *LU) U() *Dense {
	n := f.LU.rows
	u := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			u.data[i*u.stride+j] = f.LU.data[i*f.LU.stride+j]
		}
	}
	return u
}

// Perm returns the permutation as a slice: row i of P*A is row Perm[i] of A.
func (f *LU) Perm() []int {
	n := f.LU.rows
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k, p := range f.Pivots {
		perm[k], perm[p] = perm[p], perm[k]
	}
	return perm
}

// PermMatrix returns the permutation matrix P with P*A = L*U.
func (f *LU) PermMatrix() *Dense {
	perm := f.Perm()
	p := New(len(perm), len(perm))
	for i, src := range perm {
		p.data[i*p.stride+src] = 1
	}
	return p
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.LU.rows
	det := f.signDet
	for i := 0; i < n; i++ {
		det *= f.LU.data[i*f.LU.stride+i]
	}
	return det
}

// Solve solves A*x = b for each column of b, returning x as a new matrix.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	n := f.LU.rows
	if b.rows != n {
		panic(fmt.Sprintf("matrix: LU solve with rhs %d×%d for system of order %d", b.rows, b.cols, n))
	}
	x := b.Clone()
	// Apply the recorded row swaps to the right-hand side.
	for k, p := range f.Pivots {
		if p != k {
			x.SwapRows(k, p)
		}
	}
	f.LU.SolveLowerUnit(x)
	if err := f.LU.SolveUpper(x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVec solves A*x = b for a single right-hand-side vector.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	rhs := NewFromSlice(len(b), 1, b)
	x, err := f.Solve(rhs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(b))
	for i := range out {
		out[i] = x.At(i, 0)
	}
	return out, nil
}

// Inverse returns A^{-1} computed from the factorization.
func (f *LU) Inverse() (*Dense, error) {
	return f.Solve(Identity(f.LU.rows))
}
