package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUKnown(t *testing.T) {
	a := NewFromSlice(3, 3, []float64{
		2, 1, 1,
		4, -6, 0,
		-2, 7, 2,
	})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	pa := Mul(f.PermMatrix(), a)
	lu := Mul(f.L(), f.U())
	if !pa.EqualApprox(lu, 1e-12) {
		t.Fatalf("P*A != L*U:\n%v\nvs\n%v", pa, lu)
	}
}

func TestLUReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		n := 1 + int(uint(seed)%8)
		a := Random(n, n, rng)
		fac, err := Factor(a)
		if err != nil {
			// Exactly singular random matrices are measure-zero; treat as pass.
			return true
		}
		pa := Mul(fac.PermMatrix(), a)
		return pa.EqualApprox(Mul(fac.L(), fac.U()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := RandomWellConditioned(10, rng)
	want := Random(10, 3, rng)
	b := Mul(a, want)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("LU solve inaccurate")
	}
}

func TestLUSolveVec(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{4, 3, 6, 3})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveVec([]float64{10, 12})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+3y=10, 6x+3y=12 -> x=1, y=2.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("SolveVec = %v", x)
	}
}

func TestLUDet(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-2)) > 1e-12 {
		t.Fatalf("det = %v want -2", d)
	}
	if d := mustFactor(t, Identity(5)).Det(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("det(I) = %v", d)
	}
}

func mustFactor(t *testing.T, a *Dense) *LU {
	t.Helper()
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLUSingular(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := Factor(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := Factor(New(3, 3)); err != ErrSingular {
		t.Fatal("zero matrix should be singular")
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := RandomWellConditioned(6, rng)
	inv, err := mustFactor(t, a).Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, inv).EqualApprox(Identity(6), 1e-9) {
		t.Fatal("A * A^{-1} != I")
	}
}

func TestLUPivotingStability(t *testing.T) {
	// Without pivoting this matrix loses all accuracy (tiny leading pivot).
	a := NewFromSlice(2, 2, []float64{1e-20, 1, 1, 1})
	f := mustFactor(t, a)
	x, err := f.SolveVec([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// True solution ≈ (1, 1).
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("pivoted solve inaccurate: %v", x)
	}
}

func TestLUPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := mustFactor(t, Random(7, 7, rng))
	perm := f.Perm()
	seen := make(map[int]bool)
	for _, p := range perm {
		if p < 0 || p >= 7 || seen[p] {
			t.Fatalf("Perm is not a permutation: %v", perm)
		}
		seen[p] = true
	}
}
