package matrix

import (
	"fmt"
	"math"
)

// BlockedMul computes a·b through the packed, register-blocked GEMM kernel
// (see gemm.go), which performs its own cache blocking; the blockSize
// argument is retained for API compatibility and ignored. The result is
// bit-identical to Mul.
func BlockedMul(a, b *Dense, blockSize int) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: BlockedMul %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	_ = blockSize
	return Mul(a, b)
}

// BlockedFactor computes the LU factorization with partial pivoting using
// the right-looking blocked algorithm (LAPACK getrf structure): panels of
// blockSize columns are factored with pivoting over the full trailing rows,
// the swaps are applied across the matrix, the U panel is updated by a
// triangular solve, and the trailing submatrix receives a rank-blockSize
// update. The result is numerically equivalent to the unblocked Factor
// (identical pivot choices) and is what the distributed LU kernel executes
// per block column. blockSize ≤ 0 selects a default.
func BlockedFactor(a *Dense, blockSize int) (*LU, error) {
	return blockedFactor(a, blockSize, Strict)
}

// blockedFactor is BlockedFactor under an explicit numerics contract. The
// panel factorization (where pivots are chosen) is always scalar; the
// U-panel triangular solve and the trailing rank-blockSize update run
// under mode. Fast-mode rounding in a trailing update can therefore shift
// a later panel's pivot choice when two candidates are within the error
// bound of each other — factorization tests compare modes via residuals,
// not element-wise.
func blockedFactor(a *Dense, blockSize int, mode Numerics) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: BlockedFactor of non-square %d×%d", a.rows, a.cols))
	}
	if blockSize <= 0 {
		blockSize = 32
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	sign := 1.0
	var firstErr error
	for k0 := 0; k0 < n; k0 += blockSize {
		k1 := min(k0+blockSize, n)
		// Factor the panel lu[k0:n, k0:k1] with partial pivoting; row swaps
		// apply to the whole matrix width.
		for k := k0; k < k1; k++ {
			p := k
			max := math.Abs(lu.data[k*lu.stride+k])
			for i := k + 1; i < n; i++ {
				if v := math.Abs(lu.data[i*lu.stride+k]); v > max {
					max, p = v, i
				}
			}
			piv[k] = p
			if max == 0 {
				if firstErr == nil {
					firstErr = ErrSingular
				}
				continue
			}
			if p != k {
				lu.SwapRows(p, k)
				sign = -sign
			}
			pivot := lu.data[k*lu.stride+k]
			for i := k + 1; i < n; i++ {
				l := lu.data[i*lu.stride+k] / pivot
				lu.data[i*lu.stride+k] = l
				if l == 0 {
					continue
				}
				// Update only the remaining panel columns here; trailing
				// columns are updated in the blocked rank-update below.
				urow := lu.data[k*lu.stride+k+1 : k*lu.stride+k1]
				irow := lu.data[i*lu.stride+k+1 : i*lu.stride+k1]
				for j := range irow {
					irow[j] -= l * urow[j]
				}
			}
		}
		if k1 == n {
			break
		}
		// U panel: lu[k0:k1, k1:n] ← L(panel)^{-1} · lu[k0:k1, k1:n].
		panelL := lu.Slice(k0, k1, k0, k1)
		uPanel := lu.Slice(k0, k1, k1, n)
		panelL.solveLowerUnitMode(uPanel, mode)
		// Trailing update: lu[k1:n, k1:n] -= lu[k1:n, k0:k1] · uPanel.
		trailing := lu.Slice(k1, n, k1, n)
		lPanel := lu.Slice(k1, n, k0, k1)
		trailing.AddMulNumerics(-1, lPanel, uPanel, mode)
	}
	return &LU{LU: lu, Pivots: piv, signDet: sign}, firstErr
}
