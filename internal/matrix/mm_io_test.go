package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {8, 8}, {2, 7}} {
		m := Random(dims[0], dims[1], rng)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m) {
			t.Fatalf("%v: round trip lost precision", dims)
		}
	}
}

func TestMatrixMarketEmptyMatrix(t *testing.T) {
	m := New(0, 0)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, c := got.Dims()
	if r != 0 || c != 0 {
		t.Fatalf("dims %d×%d", r, c)
	}
}

func TestReadMatrixMarketCoordinate(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 3
1 1 2.5
2 3 -1
3 2 4
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2.5 || m.At(1, 2) != -1 || m.At(2, 1) != 4 || m.At(1, 1) != 0 {
		t.Fatalf("coordinate parse wrong: %v", m)
	}
}

func TestReadMatrixMarketSymmetricCoordinate(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 3
2 1 7
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 7 || m.At(1, 0) != 7 || m.At(0, 0) != 3 {
		t.Fatalf("symmetric mirror missing: %v", m)
	}
}

func TestReadMatrixMarketSymmetricArray(t *testing.T) {
	// Lower triangle column-major: (1,1),(2,1),(2,2) = 1,2,3.
	in := `%%MatrixMarket matrix array real symmetric
2 2
1
2
3
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := NewFromSlice(2, 2, []float64{1, 2, 2, 3})
	if !m.Equal(want) {
		t.Fatalf("symmetric array parse: %v", m)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"not mm":           "hello\n1 1\n0\n",
		"complex field":    "%%MatrixMarket matrix array complex general\n1 1\n0 0\n",
		"bad symmetry":     "%%MatrixMarket matrix array real hermitian\n1 1\n0\n",
		"bad format":       "%%MatrixMarket matrix banana real general\n1 1\n0\n",
		"missing size":     "%%MatrixMarket matrix array real general\n",
		"truncated array":  "%%MatrixMarket matrix array real general\n2 2\n1\n2\n",
		"bad value":        "%%MatrixMarket matrix array real general\n1 1\nxyz\n",
		"coord short size": "%%MatrixMarket matrix coordinate real general\n2 2\n1 1 5\n",
		"coord bad index":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5\n",
		"coord truncated":  "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixMarketIntegerField(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 42\n"
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 42 {
		t.Fatalf("integer field value %v", m.At(0, 0))
	}
}
