package kernels

import (
	"math"
	"math/rand"
	"testing"

	"hetgrid/internal/distribution"
	"hetgrid/internal/matrix"
)

func TestSimulateCholeskyBasics(t *testing.T) {
	arr := hetArr()
	for _, mk := range []func() distribution.Distribution{
		func() distribution.Distribution { d, _ := distribution.UniformBlockCyclic(2, 2, 16, 16); return d },
		func() distribution.Distribution { return luPanelDist(t, 16, distribution.Interleaved) },
	} {
		d := mk()
		res, err := SimulateCholesky(d, arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < res.CompBound-1e-9 || res.Makespan <= 0 {
			t.Fatalf("%s: makespan %v vs bound %v", d.Name(), res.Makespan, res.CompBound)
		}
		if res.Kernel != "cholesky" {
			t.Fatalf("kernel label %q", res.Kernel)
		}
	}
}

func TestSimulateCholeskyCheaperThanLU(t *testing.T) {
	// The symmetric update touches roughly half the trailing blocks, so
	// Cholesky's compute bound is well below LU's on the same layout.
	arr := hetArr()
	d := luPanelDist(t, 24, distribution.Interleaved)
	chol, err := SimulateCholesky(d, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lu, err := SimulateLU(d, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if chol.CompBound >= lu.CompBound {
		t.Fatalf("Cholesky bound %v not below LU bound %v", chol.CompBound, lu.CompBound)
	}
}

func TestSimulateCholeskyPanelBeatsUniform(t *testing.T) {
	arr := hetArr()
	nb := 24
	uni, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	uniRes, err := SimulateCholesky(uni, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	panRes, err := SimulateCholesky(luPanelDist(t, nb, distribution.Interleaved), arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if panRes.Makespan >= uniRes.Makespan {
		t.Fatalf("panel %v not faster than uniform %v", panRes.Makespan, uniRes.Makespan)
	}
}

func TestSimulateCholeskyValidation(t *testing.T) {
	arr := hetArr()
	if _, err := SimulateCholesky(mustRect(t), arr, Options{}); err == nil {
		t.Fatal("rectangular block grid accepted")
	}
}

func TestReplayCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	nb, r := 6, 3
	a := matrix.RandomSPD(nb*r, rng)
	for _, d := range testDistributions(t, nb) {
		rep, err := ReplayCholesky(d, a)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Mul(rep.C, rep.C.T()).EqualApprox(a, 1e-8) {
			t.Fatalf("%s: L·Lᵀ != A", d.Name())
		}
		// Strict upper triangle is zero.
		n := nb * r
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rep.C.At(i, j) != 0 {
					t.Fatalf("%s: L(%d,%d) = %v above diagonal", d.Name(), i, j, rep.C.At(i, j))
				}
			}
		}
	}
}

func TestReplayCholeskyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	nb, r := 4, 4
	a := matrix.RandomSPD(nb*r, rng)
	dense, err := matrix.FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	rep, err := ReplayCholesky(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.C.EqualApprox(dense.L, 1e-9) {
		t.Fatal("blocked Cholesky differs from dense factorization")
	}
}

func TestReplayCholeskyOpsMatchCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	nb, r := 6, 2
	a := matrix.RandomSPD(nb*r, rng)
	for _, d := range testDistributions(t, nb) {
		rep, err := ReplayCholesky(d, a)
		if err != nil {
			t.Fatal(err)
		}
		factor, solve, update, err := CholeskyOpCounts(d)
		if err != nil {
			t.Fatal(err)
		}
		for n := range rep.Ops {
			if want := factor[n] + solve[n] + update[n]; rep.Ops[n] != want {
				t.Fatalf("%s: node %d ops %d, want %d", d.Name(), n, rep.Ops[n], want)
			}
		}
	}
}

func TestCholeskyOpCountTotals(t *testing.T) {
	nb := 8
	d, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	factor, solve, update, err := CholeskyOpCounts(d)
	if err != nil {
		t.Fatal(err)
	}
	sf, ss, su := 0, 0, 0
	for n := range factor {
		sf += factor[n]
		ss += solve[n]
		su += update[n]
	}
	wantS, wantU := 0, 0
	for k := 0; k < nb; k++ {
		wantS += nb - k - 1
		wantU += (nb - k - 1) * (nb - k) / 2
	}
	if sf != nb || ss != wantS || su != wantU {
		t.Fatalf("totals (%d,%d,%d), want (%d,%d,%d)", sf, ss, su, nb, wantS, wantU)
	}
}

func TestReplayCholeskyValidation(t *testing.T) {
	d, _ := distribution.UniformBlockCyclic(2, 2, 4, 4)
	if _, err := ReplayCholesky(d, matrix.New(8, 9)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := ReplayCholesky(d, matrix.New(10, 10)); err == nil {
		t.Fatal("indivisible order accepted")
	}
	// Indefinite matrix surfaces the positive-definiteness error.
	bad := matrix.Identity(8)
	bad.Set(0, 0, -1)
	if _, err := ReplayCholesky(d, bad); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestReplayQRMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	nb, r := 6, 3
	n := nb * r
	a := matrix.Random(n, n, rng)
	want := matrix.FactorQR(a).R()
	for _, d := range testDistributions(t, nb) {
		rep, err := ReplayQR(d, a)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.R().EqualApprox(want, 1e-9) {
			t.Fatalf("%s: blocked R differs from unblocked R", d.Name())
		}
	}
}

func TestReplayQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	nb, r := 4, 4
	n := nb * r
	a := matrix.Random(n, n, rng)
	d, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	rep, err := ReplayQR(d, a)
	if err != nil {
		t.Fatal(err)
	}
	q := rep.Q(r)
	// Orthogonality and reconstruction.
	if !matrix.Mul(q.T(), q).EqualApprox(matrix.Identity(n), 1e-9) {
		t.Fatal("Q not orthogonal")
	}
	if !matrix.Mul(q, rep.R()).EqualApprox(a, 1e-9) {
		t.Fatal("Q·R != A")
	}
}

func TestReplayQROpsTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	nb, r := 5, 2
	a := matrix.Random(nb*r, nb*r, rng)
	d, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	rep, err := ReplayQR(d, a)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, o := range rep.Ops {
		total += o
	}
	// Panel k touches (nb-k) blocks, trailing (nb-k)(nb-k-1).
	want := 0
	for k := 0; k < nb; k++ {
		want += (nb - k) + (nb-k)*(nb-k-1)
	}
	if total != want {
		t.Fatalf("QR ops total %d, want %d", total, want)
	}
}

func TestReplayQRValidation(t *testing.T) {
	d, _ := distribution.UniformBlockCyclic(2, 2, 4, 4)
	if _, err := ReplayQR(d, matrix.New(8, 9)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := ReplayQR(d, matrix.New(9, 9)); err == nil {
		t.Fatal("indivisible order accepted")
	}
}

func TestSimulateCholeskyDeterministic(t *testing.T) {
	arr := hetArr()
	d := luPanelDist(t, 16, distribution.Interleaved)
	a, err := SimulateCholesky(d, arr, Options{FactorCost: 1.5, SolveCost: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateCholesky(d, arr, Options{FactorCost: 1.5, SolveCost: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Makespan-b.Makespan) != 0 {
		t.Fatal("Cholesky simulation not deterministic")
	}
}
