package kernels

import (
	"math/rand"
	"testing"

	"hetgrid/internal/core"
	"hetgrid/internal/distribution"
	"hetgrid/internal/matrix"
)

// testDistributions returns the three distribution families on a 2×2 grid
// over an nb×nb block matrix.
func testDistributions(t *testing.T, nb int) []distribution.Distribution {
	t.Helper()
	arr := hetArr()
	uni, err := distribution.UniformBlockCyclic(2, 2, nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	kl, err := distribution.NewKL(arr, nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := core.SolveArrangementExact(arr)
	if err != nil {
		t.Fatal(err)
	}
	// A 4×3 panel fits every block-matrix size the replay tests use.
	pan, err := distribution.NewPanel(sol, 4, 3, distribution.Contiguous, distribution.Interleaved)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := pan.Distribution(nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	return []distribution.Distribution{uni, pd, kl}
}

func TestReplayMMMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	nb, r := 8, 4
	a := matrix.Random(nb*r, nb*r, rng)
	b := matrix.Random(nb*r, nb*r, rng)
	want := matrix.Mul(a, b)
	for _, d := range testDistributions(t, nb) {
		rep, err := ReplayMM(d, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.C.EqualApprox(want, 1e-10) {
			t.Fatalf("%s: replay result differs from serial product", d.Name())
		}
	}
}

func TestReplayMMOpsMatchOwnership(t *testing.T) {
	nb, r := 6, 2
	rng := rand.New(rand.NewSource(102))
	a := matrix.Random(nb*r, nb*r, rng)
	b := matrix.Random(nb*r, nb*r, rng)
	for _, d := range testDistributions(t, nb) {
		rep, err := ReplayMM(d, a, b)
		if err != nil {
			t.Fatal(err)
		}
		counts := distribution.Counts(d)
		_, q := d.Dims()
		total := 0
		for pi := range counts {
			for pj := range counts[pi] {
				want := counts[pi][pj] * nb // every step touches every owned block
				if rep.Ops[pi*q+pj] != want {
					t.Fatalf("%s: node (%d,%d) ops %d, want %d", d.Name(), pi, pj, rep.Ops[pi*q+pj], want)
				}
				total += rep.Ops[pi*q+pj]
			}
		}
		if total != nb*nb*nb {
			t.Fatalf("%s: total ops %d, want nb³ = %d", d.Name(), total, nb*nb*nb)
		}
	}
}

func TestReplayMMValidation(t *testing.T) {
	d, _ := distribution.UniformBlockCyclic(2, 2, 4, 4)
	a := matrix.New(8, 8)
	if _, err := ReplayMM(d, a, matrix.New(8, 9)); err == nil {
		t.Fatal("non-square b accepted")
	}
	if _, err := ReplayMM(d, matrix.New(6, 6), matrix.New(6, 6)); err == nil {
		t.Fatal("indivisible order accepted")
	}
	dRect, _ := distribution.UniformBlockCyclic(2, 2, 2, 4)
	if _, err := ReplayMM(dRect, a, a); err == nil {
		t.Fatal("rectangular block grid accepted")
	}
}

func TestReplayLUReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	nb, r := 8, 3
	a := matrix.RandomWellConditioned(nb*r, rng)
	for _, d := range testDistributions(t, nb) {
		rep, err := ReplayLU(d, a)
		if err != nil {
			t.Fatal(err)
		}
		l, u := ExtractLU(rep.C)
		if !matrix.Mul(l, u).EqualApprox(a, 1e-8) {
			t.Fatalf("%s: L·U != A", d.Name())
		}
	}
}

func TestReplayLUDistributionIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	nb, r := 6, 2
	a := matrix.RandomWellConditioned(nb*r, rng)
	dists := testDistributions(t, nb)
	base, err := ReplayLU(dists[0], a)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dists[1:] {
		rep, err := ReplayLU(d, a)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.C.EqualApprox(base.C, 1e-12) {
			t.Fatalf("%s: factors differ from %s's", d.Name(), dists[0].Name())
		}
	}
}

func TestReplayLUOpsMatchSimulatorCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	nb, r := 6, 2
	a := matrix.RandomWellConditioned(nb*r, rng)
	for _, d := range testDistributions(t, nb) {
		rep, err := ReplayLU(d, a)
		if err != nil {
			t.Fatal(err)
		}
		factor, solve, update, err := LUOpCounts(d)
		if err != nil {
			t.Fatal(err)
		}
		for n := range rep.Ops {
			want := factor[n] + solve[n] + update[n]
			if rep.Ops[n] != want {
				t.Fatalf("%s: node %d ops %d, want %d (f=%d s=%d u=%d)",
					d.Name(), n, rep.Ops[n], want, factor[n], solve[n], update[n])
			}
		}
	}
}

func TestReplayLUMatchesUnpivotedDense(t *testing.T) {
	// For a diagonally dominant matrix the blocked, distributed LU must
	// produce the same factors as a plain unblocked unpivoted elimination.
	rng := rand.New(rand.NewSource(106))
	nb, r := 4, 3
	n := nb * r
	a := matrix.RandomWellConditioned(n, rng)
	dense := a.Clone()
	if err := matrix.FactorNoPivot(dense); err != nil {
		t.Fatal(err)
	}
	d, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	rep, err := ReplayLU(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.C.EqualApprox(dense, 1e-9) {
		t.Fatal("blocked LU differs from unblocked elimination")
	}
}

func TestReplayLUValidation(t *testing.T) {
	d, _ := distribution.UniformBlockCyclic(2, 2, 4, 4)
	if _, err := ReplayLU(d, matrix.New(8, 9)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	if _, err := ReplayLU(d, matrix.New(10, 10)); err == nil {
		t.Fatal("indivisible order accepted")
	}
	// Singular diagonal block surfaces an error.
	if _, err := ReplayLU(d, matrix.New(8, 8)); err == nil {
		t.Fatal("zero matrix accepted")
	}
}

func TestExtractLU(t *testing.T) {
	packed := matrix.NewFromSlice(2, 2, []float64{4, 3, 0.5, 2})
	l, u := ExtractLU(packed)
	if l.At(0, 0) != 1 || l.At(1, 1) != 1 || l.At(1, 0) != 0.5 || l.At(0, 1) != 0 {
		t.Fatalf("L = %v", l)
	}
	if u.At(0, 0) != 4 || u.At(0, 1) != 3 || u.At(1, 1) != 2 || u.At(1, 0) != 0 {
		t.Fatalf("U = %v", u)
	}
}
