package kernels

import (
	"math/rand"
	"testing"

	"hetgrid/internal/distribution"
	"hetgrid/internal/matrix"
	"hetgrid/internal/sim"
)

func benchOpts() Options {
	return Options{Net: sim.Config{Latency: 0.05, ByteTime: 1e-5}, BlockBytes: 8192}
}

func BenchmarkSimulateMM(b *testing.B) {
	arr := hetArr()
	d, err := distribution.UniformBlockCyclic(2, 2, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateMM(d, arr, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateLU(b *testing.B) {
	arr := hetArr()
	d, err := distribution.UniformBlockCyclic(2, 2, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateLU(d, arr, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateCholesky(b *testing.B) {
	arr := hetArr()
	d, err := distribution.UniformBlockCyclic(2, 2, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateCholesky(d, arr, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayMM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d, err := distribution.UniformBlockCyclic(2, 2, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random(64, 64, rng)
	c := matrix.Random(64, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayMM(d, a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayLU(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d, err := distribution.UniformBlockCyclic(2, 2, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.RandomWellConditioned(64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayLU(d, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayQR(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d, err := distribution.UniformBlockCyclic(2, 2, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random(64, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayQR(d, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayCholesky(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d, err := distribution.UniformBlockCyclic(2, 2, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.RandomSPD(64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayCholesky(d, a); err != nil {
			b.Fatal(err)
		}
	}
}
