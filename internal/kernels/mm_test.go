package kernels

import (
	"math"
	"testing"

	"hetgrid/internal/core"
	"hetgrid/internal/distribution"
	"hetgrid/internal/grid"
	"hetgrid/internal/sim"
)

// hetArr is the imperfect 2×2 grid used across kernel tests.
func hetArr() *grid.Arrangement {
	return grid.MustNew([][]float64{{1, 2}, {3, 5}})
}

// panelDist builds the paper's heterogeneous panel distribution for arr on
// an nb×nb block matrix.
func panelDist(t *testing.T, arr *grid.Arrangement, nb int) distribution.Distribution {
	t.Helper()
	sol, _, err := core.SolveArrangementExact(arr)
	if err != nil {
		t.Fatal(err)
	}
	pan, err := distribution.NewPanel(sol, 8, 6, distribution.Contiguous, distribution.Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pan.Distribution(nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSimulateMMZeroCommEqualsCompBound(t *testing.T) {
	arr := hetArr()
	for _, mk := range []func() distribution.Distribution{
		func() distribution.Distribution { d, _ := distribution.UniformBlockCyclic(2, 2, 24, 24); return d },
		func() distribution.Distribution { return panelDist(t, arr, 24) },
		func() distribution.Distribution { d, _ := distribution.NewKL(arr, 24, 24); return d },
	} {
		d := mk()
		res, err := SimulateMM(d, arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Makespan-res.CompBound) > 1e-9 {
			t.Fatalf("%s: zero-comm makespan %v != comp bound %v", d.Name(), res.Makespan, res.CompBound)
		}
		if res.Efficiency() < 1-1e-9 {
			t.Fatalf("%s: zero-comm efficiency %v", d.Name(), res.Efficiency())
		}
	}
}

func TestSimulateMMPanelBeatsUniform(t *testing.T) {
	// The headline claim: the uniform block-cyclic distribution is limited
	// by the slowest processor; the heterogeneous panel is not.
	arr := hetArr()
	nb := 24
	uni, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	opts := Options{Net: sim.Config{Latency: 1e-3, ByteTime: 1e-6}, BlockBytes: 8 * 32 * 32}
	uniRes, err := SimulateMM(uni, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	panRes, err := SimulateMM(panelDist(t, arr, nb), arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if panRes.Makespan >= uniRes.Makespan {
		t.Fatalf("panel %v not faster than uniform %v", panRes.Makespan, uniRes.Makespan)
	}
	// Uniform's compute bound: each processor owns nb²/4 blocks, the
	// slowest has cycle-time 5 → bound = nb · nb²/4 /nb · 5... per full
	// run: (nb²/4)·nb·5 / nb = per-step nb²/4·... total = nb·(nb²/4 per
	// step? each step updates all owned blocks) = nb·(nb²/4)·5.
	wantUniBound := float64(nb) * float64(nb*nb) / 4 * 5
	if math.Abs(uniRes.CompBound-wantUniBound) > 1e-6 {
		t.Fatalf("uniform comp bound %v, want %v", uniRes.CompBound, wantUniBound)
	}
	// Speedup should approach t_slow/t_optimal-balance ≈ 5·(aggregate
	// speed)/4 within panel-rounding slack; at minimum 1.5×.
	if uniRes.Makespan/panRes.Makespan < 1.5 {
		t.Fatalf("speedup only %v", uniRes.Makespan/panRes.Makespan)
	}
}

func TestSimulateMMSyncStepsSlower(t *testing.T) {
	arr := hetArr()
	nb := 12
	d := panelDist(t, arr, nb)
	opts := Options{Net: sim.Config{Latency: 1e-3, ByteTime: 1e-6}, BlockBytes: 8192}
	pipe, err := SimulateMM(d, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.SyncSteps = true
	syncd, err := SimulateMM(d, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if syncd.Makespan < pipe.Makespan-1e-12 {
		t.Fatalf("synchronous %v faster than pipelined %v", syncd.Makespan, pipe.Makespan)
	}
}

func TestSimulateMMKLPaysMoreMessages(t *testing.T) {
	// KL's broken grid pattern shows up as extra broadcast traffic
	// relative to the product-structured panel on the same grid.
	arr := hetArr()
	nb := 28
	opts := Options{Net: sim.Config{Latency: 1e-3}, BlockBytes: 8192}
	kl, err := distribution.NewKL(arr, nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	klRes, err := SimulateMM(kl, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	panRes, err := SimulateMM(panelDist(t, arr, nb), arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if klRes.Stats.Messages <= panRes.Stats.Messages {
		t.Fatalf("KL messages %d not more than panel %d", klRes.Stats.Messages, panRes.Stats.Messages)
	}
}

func TestSimulateMMBroadcastKindsZeroComm(t *testing.T) {
	arr := hetArr()
	d := panelDist(t, arr, 12)
	var base float64
	for i, kind := range []sim.BroadcastKind{sim.StarBroadcast, sim.RingBroadcast, sim.TreeBroadcast} {
		res, err := SimulateMM(d, arr, Options{Broadcast: kind})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res.Makespan
		} else if math.Abs(res.Makespan-base) > 1e-9 {
			t.Fatalf("broadcast kind %d changed zero-comm makespan: %v vs %v", kind, res.Makespan, base)
		}
	}
}

func TestSimulateMMSharedBusSlower(t *testing.T) {
	arr := hetArr()
	d := panelDist(t, arr, 12)
	cfg := sim.Config{Latency: 5e-3, ByteTime: 1e-6}
	sw, err := SimulateMM(d, arr, Options{Net: cfg, BlockBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	cfg.SharedBus = true
	bus, err := SimulateMM(d, arr, Options{Net: cfg, BlockBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if bus.Makespan < sw.Makespan-1e-12 {
		t.Fatalf("bus %v faster than switched %v", bus.Makespan, sw.Makespan)
	}
}

func TestSimulateMMValidation(t *testing.T) {
	arr := hetArr()
	d, _ := distribution.UniformBlockCyclic(2, 2, 4, 6)
	if _, err := SimulateMM(d, arr, Options{}); err == nil {
		t.Fatal("non-square block matrix accepted")
	}
	d2, _ := distribution.UniformBlockCyclic(2, 2, 4, 4)
	if _, err := SimulateMM(d2, grid.MustNew([][]float64{{1, 2, 3}}), Options{}); err == nil {
		t.Fatal("mismatched arrangement accepted")
	}
}

func TestSimulateMMHomogeneousBalanced(t *testing.T) {
	// On a homogeneous grid the uniform distribution is optimal: zero-comm
	// makespan equals total work / processor count.
	arr := grid.MustNew([][]float64{{1, 1}, {1, 1}})
	nb := 8
	d, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	res, err := SimulateMM(d, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(nb) * float64(nb*nb) / 4
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Fatalf("homogeneous makespan %v, want %v", res.Makespan, want)
	}
}
