package kernels

import (
	"fmt"

	"hetgrid/internal/distribution"
	"hetgrid/internal/grid"
	"hetgrid/internal/matrix"
	"hetgrid/internal/sim"
)

// SimulateCholesky runs the right-looking blocked Cholesky factorization
// A = L·Lᵀ (lower variant) on an nb×nb block matrix. It is the third
// ScaLAPACK factorization alongside LU and QR; its structure matches LU
// with a symmetric trailing update restricted to the lower triangle. At
// step k:
//
//  1. the diagonal owner factors A(k,k);
//  2. the factored diagonal is broadcast down block column k, whose owners
//     apply triangular solves to their L(i,k) panels;
//  3. each L(i,k) block is broadcast to the owners that need it for the
//     trailing update — owners of row i (columns k+1..i) and of column i
//     (rows i..nb-1), the symmetric communication pattern;
//  4. owners update their lower-triangle trailing blocks
//     A(i,j) -= L(i,k)·L(j,k)ᵀ, k < j ≤ i.
func SimulateCholesky(d distribution.Distribution, arr *grid.Arrangement, opts Options) (*Result, error) {
	o := opts.withDefaults()
	nbr, nbc := d.Blocks()
	if nbr != nbc {
		return nil, fmt.Errorf("kernels: Cholesky needs a square block matrix, got %d×%d", nbr, nbc)
	}
	nb := nbr
	g, err := newGridCluster(d, arr, o.Net)
	if err != nil {
		return nil, err
	}
	var tr *sim.Trace
	if o.EnableTrace {
		tr = g.c.EnableTrace()
	}
	nodes := g.p * g.q
	updDone := make([]float64, nodes)

	// needers[i] at step k: nodes that use L(i,k) in the trailing update.
	needers := func(k, i int) []int {
		seen := map[int]struct{}{}
		var out []int
		add := func(n int) {
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				out = append(out, n)
			}
		}
		for j := k + 1; j <= i; j++ {
			add(g.owner(i, j))
		}
		for m := i; m < nb; m++ {
			add(g.owner(m, i))
		}
		return out
	}

	for k := 0; k < nb; k++ {
		// 1. Diagonal Cholesky factor.
		diagOwner := g.owner(k, k)
		diagDone := g.c.Compute(diagOwner, updDone[diagOwner], o.FactorCost*g.cycleTime(diagOwner))

		// 2. Broadcast the diagonal down the column, then panel solves.
		var colOwnerList []int
		seen := map[int]struct{}{}
		for bi := k + 1; bi < nb; bi++ {
			n := g.owner(bi, k)
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				colOwnerList = append(colOwnerList, n)
			}
		}
		diagArr := g.c.Broadcast(o.Broadcast, diagOwner, colOwnerList, o.BlockBytes, diagDone)
		solveCount := make([]int, nodes)
		for bi := k + 1; bi < nb; bi++ {
			solveCount[g.owner(bi, k)]++
		}
		solveDone := make([]float64, nodes)
		for n, cnt := range solveCount {
			if cnt == 0 {
				continue
			}
			start := maxf(diagArr[n], updDone[n])
			solveDone[n] = g.c.Compute(n, start, float64(cnt)*o.SolveCost*g.cycleTime(n))
		}

		// 3. Broadcast each panel block to its needers, panel-aggregated.
		var idx []int
		for bi := k + 1; bi < nb; bi++ {
			idx = append(idx, bi)
		}
		lArr := g.panelBroadcast(o.Broadcast, idx,
			func(bi int) int { return g.owner(bi, k) },
			func(bi int) []int { return needers(k, bi) },
			func(bi int) float64 { return solveDone[g.owner(bi, k)] },
			o.BlockBytes)

		// 4. Symmetric trailing update on the lower triangle.
		updCount := make([]int, nodes)
		updReady := make([]float64, nodes)
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj <= bi; bj++ {
				n := g.owner(bi, bj)
				updCount[n]++
				updReady[n] = maxf(updReady[n], maxf(lArr[bi][n], lArr[bj][n]))
			}
		}
		for n := 0; n < nodes; n++ {
			if updCount[n] == 0 {
				continue
			}
			updDone[n] = g.c.Compute(n, maxf(updReady[n], updDone[n]),
				float64(updCount[n])*g.cycleTime(n))
		}
	}
	return g.finish("cholesky", tr), nil
}

// ReplayCholesky executes the blocked right-looking Cholesky factorization
// numerically with block ownership from d, returning the lower factor L
// (upper triangle zero) and per-node block-operation counts. The input must
// be symmetric positive definite.
func ReplayCholesky(d distribution.Distribution, a *matrix.Dense) (*Replay, error) {
	return replayCholesky(d, a, matrix.Strict)
}

// ReplayCholeskyNumerics is ReplayCholesky under an explicit numerics
// contract: diagonal factorization and panel solves stay scalar
// (matrix.Strict is exactly ReplayCholesky), the trailing symmetric
// updates run under mode.
func ReplayCholeskyNumerics(d distribution.Distribution, a *matrix.Dense, mode matrix.Numerics) (*Replay, error) {
	return replayCholesky(d, a, mode)
}

func replayCholesky(d distribution.Distribution, a *matrix.Dense, mode matrix.Numerics) (*Replay, error) {
	n, nc := a.Dims()
	if n != nc {
		return nil, fmt.Errorf("kernels: ReplayCholesky needs a square matrix, got %d×%d", n, nc)
	}
	r, err := checkBlocking(n, d)
	if err != nil {
		return nil, err
	}
	nb, _ := d.Blocks()
	p, q := d.Dims()
	ops := make([]int, p*q)
	charge := func(bi, bj int) {
		pi, pj := d.Owner(bi, bj)
		ops[pi*q+pj]++
	}
	work := a.Clone()
	for k := 0; k < nb; k++ {
		diag := blockView(work, k, k, r)
		f, err := matrix.FactorCholesky(diag.Clone())
		if err != nil {
			return nil, fmt.Errorf("kernels: step %d: %w", k, err)
		}
		diag.CopyFrom(f.L)
		charge(k, k)
		lkkT := f.L.T()
		for bi := k + 1; bi < nb; bi++ {
			// L(i,k) = A(i,k) · L(k,k)^{-T}: solve X·Lᵀ = A.
			if err := blockView(work, bi, k, r).SolveUpperRight(lkkT); err != nil {
				return nil, fmt.Errorf("kernels: step %d row %d: %w", k, bi, err)
			}
			charge(bi, k)
		}
		for bi := k + 1; bi < nb; bi++ {
			li := blockView(work, bi, k, r)
			for bj := k + 1; bj <= bi; bj++ {
				lj := blockView(work, bj, k, r)
				blockView(work, bi, bj, r).AddMulNumerics(-1, li, lj.T(), mode)
				charge(bi, bj)
			}
		}
	}
	// Zero the strict upper triangle (the algorithm never wrote it, but the
	// input's upper values linger in the untouched blocks).
	l := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, work.At(i, j))
		}
	}
	return &Replay{C: l, Ops: ops}, nil
}

// CholeskyOpCounts returns per-node [factor, solve, update] counts matching
// SimulateCholesky's charging, for cross-checks against ReplayCholesky.
func CholeskyOpCounts(d distribution.Distribution) (factor, solve, update []int, err error) {
	nbr, nbc := d.Blocks()
	if nbr != nbc {
		return nil, nil, nil, fmt.Errorf("kernels: Cholesky needs a square block matrix, got %d×%d", nbr, nbc)
	}
	p, q := d.Dims()
	factor = make([]int, p*q)
	solve = make([]int, p*q)
	update = make([]int, p*q)
	node := func(bi, bj int) int {
		pi, pj := d.Owner(bi, bj)
		return pi*q + pj
	}
	for k := 0; k < nbr; k++ {
		factor[node(k, k)]++
		for bi := k + 1; bi < nbr; bi++ {
			solve[node(bi, k)]++
			for bj := k + 1; bj <= bi; bj++ {
				update[node(bi, bj)]++
			}
		}
	}
	return factor, solve, update, nil
}
