package kernels

import (
	"fmt"

	"hetgrid/internal/distribution"
	"hetgrid/internal/grid"
	"hetgrid/internal/sim"
)

// SimulateLU runs the right-looking blocked LU decomposition of §3.2 on an
// nb×nb block matrix. At step k:
//
//  1. the owner of the diagonal block factors it and broadcasts it down the
//     processor column owning block column k;
//  2. the owners of the sub-diagonal blocks of column k compute their L
//     blocks and broadcast them horizontally to the processors owning the
//     trailing rows (increasing-ring in ScaLAPACK; configurable here);
//  3. the owners of block row k right of the diagonal apply the triangular
//     solve to their U blocks and broadcast them vertically;
//  4. every processor applies the rank-r update to its owned blocks of the
//     trailing submatrix.
//
// Because the active region shrinks as k advances, the placement *order* of
// panel rows/columns matters (§3.2.2): an interleaved panel keeps every
// processor busy in the tail of the factorization where a contiguous one
// leaves whole processor rows/columns idle.
//
// The same code serves QR cost simulation by raising SolveCost and
// FactorCost: the communication structure of the ScaLAPACK QR is identical
// (panel factor, horizontal broadcast of the Householder panel, trailing
// update), with roughly doubled flop counts.
func SimulateLU(d distribution.Distribution, arr *grid.Arrangement, opts Options) (*Result, error) {
	o := opts.withDefaults()
	nbr, nbc := d.Blocks()
	if nbr != nbc {
		return nil, fmt.Errorf("kernels: LU needs a square block matrix, got %d×%d", nbr, nbc)
	}
	nb := nbr
	g, err := newGridCluster(d, arr, o.Net)
	if err != nil {
		return nil, err
	}
	var tr *sim.Trace
	if o.EnableTrace {
		tr = g.c.EnableTrace()
	}

	nodes := g.p * g.q
	// blockReady[node] tracks when the node's copy of the trailing matrix
	// incorporates all updates through the previous step; per-node CPU
	// serialization in sim handles intra-node ordering, and panel
	// dependencies are tracked explicitly below.
	updDone := make([]float64, nodes)

	pivotBytes := o.PivotMsgBytes
	if pivotBytes <= 0 {
		pivotBytes = 16
	}
	for k := 0; k < nb; k++ {
		diagOwner := g.owner(k, k)

		// 0. Partial pivoting (optional): the owners of the active part of
		// block column k send their local maxima to the diagonal owner,
		// which broadcasts the winner back; then the diagonal block row and
		// the (worst-case: last) pivot block row are exchanged across the
		// trailing columns.
		if o.Pivoting {
			seen := map[int]struct{}{diagOwner: {}}
			var searchers []int
			for bi := k; bi < nb; bi++ {
				if n := g.owner(bi, k); n != diagOwner {
					if _, ok := seen[n]; !ok {
						seen[n] = struct{}{}
						searchers = append(searchers, n)
					}
				}
			}
			// Reduce to the diagonal owner…
			at := updDone[diagOwner]
			for _, n := range searchers {
				arrive := g.c.Send(n, diagOwner, pivotBytes, updDone[n])
				at = maxf(at, arrive)
			}
			// …and broadcast the pivot index back.
			pivArr := g.c.Broadcast(o.Broadcast, diagOwner, searchers, pivotBytes, at)
			// Swap the diagonal block row with the worst-case pivot block
			// row (the last active one) across all trailing columns.
			if pr := nb - 1; pr > k {
				for bj := k; bj < nb; bj++ {
					a := g.owner(k, bj)
					b := g.owner(pr, bj)
					if a == b {
						continue
					}
					ready := maxf(arrivalOr(pivArr, a, at), arrivalOr(pivArr, b, at))
					g.c.Send(a, b, o.BlockBytes, ready)
					g.c.Send(b, a, o.BlockBytes, ready)
				}
				// The diagonal owner resumes once its swaps are delivered;
				// approximating with its NIC availability keeps the model
				// conservative without tracking every block individually.
				updDone[diagOwner] = maxf(updDone[diagOwner], at)
			}
		}

		// 1. Diagonal factor.
		diagDone := g.c.Compute(diagOwner, updDone[diagOwner], o.FactorCost*g.cycleTime(diagOwner))

		// Broadcast the factored diagonal block down block column k's
		// owners (they need it for their L blocks).
		colOwners := map[int]struct{}{}
		var colOwnerList []int
		for bi := k + 1; bi < nb; bi++ {
			n := g.owner(bi, k)
			if _, ok := colOwners[n]; !ok {
				colOwners[n] = struct{}{}
				colOwnerList = append(colOwnerList, n)
			}
		}
		diagArr := g.c.Broadcast(o.Broadcast, diagOwner, colOwnerList, o.BlockBytes, diagDone)

		// 2. L panel: each owner computes its sub-diagonal blocks of
		// column k, then broadcasts each block to the owners of the
		// trailing part of its block row.
		rowRecv := g.rowReceivers(nb, nb, k) // receivers for trailing columns ≥ k
		lArr := make([]map[int]float64, nb)  // per block row: arrival times of L(bi,k)
		lCount := make([]int, nodes)
		for bi := k + 1; bi < nb; bi++ {
			lCount[g.owner(bi, k)]++
		}
		lDone := make([]float64, nodes)
		for n, cnt := range lCount {
			if cnt == 0 {
				continue
			}
			start := maxf(diagArr[n], updDone[n])
			lDone[n] = g.c.Compute(n, start, float64(cnt)*o.FactorCost*g.cycleTime(n))
		}
		var lIdx []int
		for bi := k + 1; bi < nb; bi++ {
			lIdx = append(lIdx, bi)
		}
		for bi, arr := range g.panelBroadcast(o.Broadcast, lIdx,
			func(bi int) int { return g.owner(bi, k) },
			func(bi int) []int { return rowRecv[bi] },
			func(bi int) float64 { return lDone[g.owner(bi, k)] },
			o.BlockBytes) {
			lArr[bi] = arr
		}
		// The diagonal block's L factor also travels with the row-k
		// broadcast for the U solve.
		lArr[k] = g.c.Broadcast(o.Broadcast, diagOwner, rowRecv[k], o.BlockBytes, diagDone)

		// 3. U panel: triangular solves on block row k, then vertical
		// broadcasts to trailing column owners.
		colRecv := g.colReceivers(nb, nb, k)
		uArr := make([]map[int]float64, nb)
		uCount := make([]int, nodes)
		for bj := k + 1; bj < nb; bj++ {
			uCount[g.owner(k, bj)]++
		}
		uDone := make([]float64, nodes)
		for n, cnt := range uCount {
			if cnt == 0 {
				continue
			}
			start := maxf(lArr[k][n], updDone[n])
			uDone[n] = g.c.Compute(n, start, float64(cnt)*o.SolveCost*g.cycleTime(n))
		}
		var uIdx []int
		for bj := k + 1; bj < nb; bj++ {
			uIdx = append(uIdx, bj)
		}
		for bj, arr := range g.panelBroadcast(o.Broadcast, uIdx,
			func(bj int) int { return g.owner(k, bj) },
			func(bj int) []int { return colRecv[bj] },
			func(bj int) float64 { return uDone[g.owner(k, bj)] },
			o.BlockBytes) {
			uArr[bj] = arr
		}

		// 4. Trailing rank-r update on blocks (bi, bj), bi,bj > k.
		updCount := make([]int, nodes)
		updReady := make([]float64, nodes)
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				n := g.owner(bi, bj)
				updCount[n]++
				updReady[n] = maxf(updReady[n], maxf(lArr[bi][n], uArr[bj][n]))
			}
		}
		for n := 0; n < nodes; n++ {
			if updCount[n] == 0 {
				continue
			}
			updDone[n] = g.c.Compute(n, maxf(updReady[n], updDone[n]),
				float64(updCount[n])*g.cycleTime(n))
		}
	}
	return g.finish("lu", tr), nil
}

// arrivalOr returns the arrival time for node n in a broadcast result, or
// fallback when the node was not a receiver (e.g. the root itself).
func arrivalOr(arr map[int]float64, n int, fallback float64) float64 {
	if t, ok := arr[n]; ok {
		return t
	}
	return fallback
}

// LUOpCounts returns the number of block operations of each kind charged to
// every node by SimulateLU, for cross-checking against the numeric replay:
// [factor, solve, update] per node (node = pi·q + pj).
func LUOpCounts(d distribution.Distribution) (factor, solve, update []int, err error) {
	nbr, nbc := d.Blocks()
	if nbr != nbc {
		return nil, nil, nil, fmt.Errorf("kernels: LU needs a square block matrix, got %d×%d", nbr, nbc)
	}
	p, q := d.Dims()
	nodes := p * q
	factor = make([]int, nodes)
	solve = make([]int, nodes)
	update = make([]int, nodes)
	node := func(bi, bj int) int {
		pi, pj := d.Owner(bi, bj)
		return pi*q + pj
	}
	for k := 0; k < nbr; k++ {
		for bi := k; bi < nbr; bi++ {
			factor[node(bi, k)]++
		}
		for bj := k + 1; bj < nbr; bj++ {
			solve[node(k, bj)]++
		}
		for bi := k + 1; bi < nbr; bi++ {
			for bj := k + 1; bj < nbr; bj++ {
				update[node(bi, bj)]++
			}
		}
	}
	return factor, solve, update, nil
}
