package kernels

import (
	"fmt"

	"hetgrid/internal/distribution"
	"hetgrid/internal/matrix"
)

// Replay results carry the computed matrix plus per-node attribution of the
// block operations performed "by" each processor, letting tests tie the
// numeric execution to the simulator's cost accounting.
type Replay struct {
	// C is the computed result (product for MM; packed LU factors for LU).
	C *matrix.Dense
	// Ops[node] counts the block operations attributed to node pi·q+pj.
	Ops []int
}

// blockView returns the (bi,bj) r×r block of m as a shared view.
func blockView(m *matrix.Dense, bi, bj, r int) *matrix.Dense {
	return m.Slice(bi*r, (bi+1)*r, bj*r, (bj+1)*r)
}

// checkBlocking validates that the matrix divides evenly into the
// distribution's block grid and returns the block size.
func checkBlocking(n int, d distribution.Distribution) (r int, err error) {
	nbr, nbc := d.Blocks()
	if nbr != nbc {
		return 0, fmt.Errorf("kernels: square block grid required, got %d×%d", nbr, nbc)
	}
	if n%nbr != 0 {
		return 0, fmt.Errorf("kernels: matrix order %d not divisible into %d block rows", n, nbr)
	}
	return n / nbr, nil
}

// ReplayMM executes the blocked outer-product multiplication C = A·B with
// block ownership taken from d, attributing each block update to its owner.
// The numeric result is independent of the distribution — the property the
// load-balancing strategies rely on — and tests assert it.
func ReplayMM(d distribution.Distribution, a, b *matrix.Dense) (*Replay, error) {
	return replayMM(d, a, b, matrix.Strict)
}

// ReplayMMNumerics is ReplayMM under an explicit numerics contract: every
// block update runs through matrix.AddMulNumerics, so matrix.Fast computes
// the product under the FMA-fused error-bound contract while matrix.Strict
// is exactly ReplayMM.
func ReplayMMNumerics(d distribution.Distribution, a, b *matrix.Dense, mode matrix.Numerics) (*Replay, error) {
	return replayMM(d, a, b, mode)
}

func replayMM(d distribution.Distribution, a, b *matrix.Dense, mode matrix.Numerics) (*Replay, error) {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != ac || br != bc || ar != br {
		return nil, fmt.Errorf("kernels: ReplayMM needs equal square matrices, got %d×%d and %d×%d", ar, ac, br, bc)
	}
	r, err := checkBlocking(ar, d)
	if err != nil {
		return nil, err
	}
	nb, _ := d.Blocks()
	p, q := d.Dims()
	ops := make([]int, p*q)
	c := matrix.New(ar, ar)
	for k := 0; k < nb; k++ {
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				pi, pj := d.Owner(bi, bj)
				ops[pi*q+pj]++
				blockView(c, bi, bj, r).AddMulNumerics(1, blockView(a, bi, k, r), blockView(b, k, bj, r), mode)
			}
		}
	}
	return &Replay{C: c, Ops: ops}, nil
}

// ReplayLU executes the blocked right-looking LU decomposition without
// pivoting (callers supply diagonally dominant matrices; ScaLAPACK's
// pivoted variant permutes rows across owners, which changes nothing about
// the load-balance accounting this replay exists to validate). The result
// packs L (unit diagonal implicit) below the diagonal and U on and above
// it, exactly like matrix.LU. Each block operation — panel factor,
// triangular solve, trailing update — is attributed to the block's owner.
func ReplayLU(d distribution.Distribution, a *matrix.Dense) (*Replay, error) {
	return replayLU(d, a, matrix.Strict)
}

// ReplayLUNumerics is ReplayLU under an explicit numerics contract: the
// diagonal-block factorization stays scalar (matrix.Strict is exactly
// ReplayLU), while the U-panel triangular solves and the trailing updates
// run under mode.
func ReplayLUNumerics(d distribution.Distribution, a *matrix.Dense, mode matrix.Numerics) (*Replay, error) {
	return replayLU(d, a, mode)
}

func replayLU(d distribution.Distribution, a *matrix.Dense, mode matrix.Numerics) (*Replay, error) {
	n, nc := a.Dims()
	if n != nc {
		return nil, fmt.Errorf("kernels: ReplayLU needs a square matrix, got %d×%d", n, nc)
	}
	r, err := checkBlocking(n, d)
	if err != nil {
		return nil, err
	}
	nb, _ := d.Blocks()
	p, q := d.Dims()
	ops := make([]int, p*q)
	lu := a.Clone()
	charge := func(bi, bj int) {
		pi, pj := d.Owner(bi, bj)
		ops[pi*q+pj]++
	}
	for k := 0; k < nb; k++ {
		// Factor the diagonal block in place (unblocked, no pivoting).
		diag := blockView(lu, k, k, r)
		if err := matrix.FactorNoPivot(diag); err != nil {
			return nil, fmt.Errorf("kernels: step %d: %w", k, err)
		}
		charge(k, k)
		// Panel: L(bi,k) = A(bi,k) · U(k,k)^{-1}.
		for bi := k + 1; bi < nb; bi++ {
			if err := blockView(lu, bi, k, r).SolveUpperRight(diag); err != nil {
				return nil, fmt.Errorf("kernels: step %d row %d: %w", k, bi, err)
			}
			charge(bi, k)
		}
		// U panel: U(k,bj) = L(k,k)^{-1} · A(k,bj).
		for bj := k + 1; bj < nb; bj++ {
			u := blockView(lu, k, bj, r)
			diag.SolveLowerUnitNumerics(u, mode)
			charge(k, bj)
		}
		// Trailing update: A(bi,bj) -= L(bi,k) · U(k,bj).
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				blockView(lu, bi, bj, r).AddMulNumerics(-1, blockView(lu, bi, k, r), blockView(lu, k, bj, r), mode)
				charge(bi, bj)
			}
		}
	}
	return &Replay{C: lu, Ops: ops}, nil
}

// ExtractLU splits a packed LU matrix into explicit L and U factors.
func ExtractLU(packed *matrix.Dense) (l, u *matrix.Dense) {
	n, _ := packed.Dims()
	l = matrix.Identity(n)
	u = matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j < i {
				l.Set(i, j, packed.At(i, j))
			} else {
				u.Set(i, j, packed.At(i, j))
			}
		}
	}
	return l, u
}
