package kernels

import (
	"fmt"

	"hetgrid/internal/distribution"
	"hetgrid/internal/matrix"
)

// ReplayQR executes the blocked right-looking Householder QR factorization
// numerically under the given distribution: at step k the owners of block
// column k factor the tall panel A[k·r:, k·r:(k+1)·r], and the reflectors
// are applied to every trailing block column. Ownership is charged at block
// granularity exactly like the simulator's cost model (panel blocks at
// FactorCost, trailing blocks at update cost).
//
// The result packs R in the upper triangle and the Householder vectors
// below the diagonal; Taus carries the reflector scalings per panel. The
// factors are numerically identical to an unblocked Householder QR of the
// full matrix, which tests exploit.
type QRReplay struct {
	Replay
	// Taus[k] holds the Householder scalings of panel k.
	Taus [][]float64
}

// ReplayQR factors a square matrix; see QRReplay.
func ReplayQR(d distribution.Distribution, a *matrix.Dense) (*QRReplay, error) {
	return replayQR(d, a, matrix.Strict)
}

// ReplayQRNumerics is ReplayQR under an explicit numerics contract,
// accepted for API symmetry with the other kernels. The QR replay's block
// operations are Householder reflector applications — panel work that the
// numerics contract keeps Strict on every kernel (reflector choices, like
// pivot choices, are always made on Strict arithmetic) — so both modes
// currently execute identically; Fast-mode callers still get the contract
// they asked for, since Strict trivially satisfies the error bound.
func ReplayQRNumerics(d distribution.Distribution, a *matrix.Dense, mode matrix.Numerics) (*QRReplay, error) {
	return replayQR(d, a, mode)
}

func replayQR(d distribution.Distribution, a *matrix.Dense, _ matrix.Numerics) (*QRReplay, error) {
	n, nc := a.Dims()
	if n != nc {
		return nil, fmt.Errorf("kernels: ReplayQR needs a square matrix, got %d×%d", n, nc)
	}
	r, err := checkBlocking(n, d)
	if err != nil {
		return nil, err
	}
	nb, _ := d.Blocks()
	p, q := d.Dims()
	ops := make([]int, p*q)
	charge := func(bi, bj int) {
		pi, pj := d.Owner(bi, bj)
		ops[pi*q+pj]++
	}
	work := a.Clone()
	taus := make([][]float64, nb)
	for k := 0; k < nb; k++ {
		// Panel factorization over the full trailing column slab.
		panel := work.Slice(k*r, n, k*r, (k+1)*r)
		f := matrix.FactorQR(panel.Clone())
		panel.CopyFrom(f.Packed())
		taus[k] = append([]float64(nil), f.Tau()...)
		for bi := k; bi < nb; bi++ {
			charge(bi, k)
		}
		// Apply Qᵀ of the panel to each trailing block column.
		for bj := k + 1; bj < nb; bj++ {
			slab := work.Slice(k*r, n, bj*r, (bj+1)*r)
			f.QTMul(slab)
			for bi := k; bi < nb; bi++ {
				charge(bi, bj)
			}
		}
	}
	return &QRReplay{Replay: Replay{C: work, Ops: ops}, Taus: taus}, nil
}

// R extracts the upper triangular factor from the replay.
func (f *QRReplay) R() *matrix.Dense {
	n, _ := f.C.Dims()
	out := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			out.Set(i, j, f.C.At(i, j))
		}
	}
	return out
}

// Q reconstructs the full orthogonal factor by applying the stored panel
// reflectors to the identity in reverse order. Cost is O(n³); intended for
// verification.
func (f *QRReplay) Q(blockSize int) *matrix.Dense {
	n, _ := f.C.Dims()
	r := blockSize
	nb := n / r
	qm := matrix.Identity(n)
	for k := nb - 1; k >= 0; k-- {
		// Apply H_k0 H_k1 ... (the panel's reflectors) to q[k·r:, :].
		applyPanelQ(f.C.Slice(k*r, n, k*r, (k+1)*r), f.Taus[k], qm.Slice(k*r, n, 0, n))
	}
	return qm
}

// applyPanelQ applies Q = H_0·H_1⋯ (not transposed) of a packed panel to b
// in place: reflectors run last-to-first.
func applyPanelQ(packed *matrix.Dense, tau []float64, b *matrix.Dense) {
	m, cols := packed.Dims()
	_, bc := b.Dims()
	for k := len(tau) - 1; k >= 0; k-- {
		if k >= cols || tau[k] == 0 {
			continue
		}
		for j := 0; j < bc; j++ {
			sum := b.At(k, j)
			for i := k + 1; i < m; i++ {
				sum += packed.At(i, k) * b.At(i, j)
			}
			s := tau[k] * sum
			b.Add(k, j, -s)
			for i := k + 1; i < m; i++ {
				b.Add(i, j, -s*packed.At(i, k))
			}
		}
	}
}
