// Package kernels simulates and replays the dense linear algebra kernels of
// the paper — the outer-product matrix multiplication and the right-looking
// LU decomposition — on a heterogeneous 2D processor grid under an
// arbitrary block distribution.
//
// Two complementary modes are provided:
//
//   - Simulate…: virtual-time execution over internal/sim, producing
//     makespans, compute lower bounds and traffic statistics. This is the
//     "simulation measurements for a heterogeneous network of workstations"
//     substrate of the paper's abstract.
//   - Replay…: real numeric execution of the same block algorithm with
//     every block operation attributed to its owner, verifying that the
//     result is independent of the distribution and that the per-processor
//     operation counts match what the simulator charges.
package kernels

import (
	"fmt"

	"hetgrid/internal/distribution"
	"hetgrid/internal/grid"
	"hetgrid/internal/sim"
)

// Options configures a kernel simulation.
type Options struct {
	// Net is the communication fabric model.
	Net sim.Config
	// Broadcast selects the one-to-many algorithm for panel broadcasts.
	Broadcast sim.BroadcastKind
	// BlockBytes is the message size of one r×r block (8·r² for float64).
	BlockBytes float64
	// SyncSteps inserts a barrier between outer-product steps: step k's
	// broadcasts start only after every processor finished step k−1. This
	// reproduces the paper's per-step analysis T = Σ_k max_ij(...); without
	// it the pipelined schedule lets communication run ahead.
	SyncSteps bool
	// FactorCost and SolveCost scale the per-block cost of the LU panel
	// factorization and triangular solve relative to a block update
	// (defaults 1).
	FactorCost, SolveCost float64
	// EnableTrace records every simulated operation; the trace is attached
	// to the Result.
	EnableTrace bool
	// Pivoting charges the LU simulation for partial pivoting: a
	// max-reduction among the owners of the active block column at every
	// step, plus the exchange of the pivot row with the diagonal row
	// across the trailing columns. The pivot row is not known statically,
	// so the model deterministically assumes the worst case — the last
	// active block row — making the result a pessimistic bound; the paper's
	// ScaLAPACK baseline pivots, the cost model here shows what that adds.
	Pivoting bool
	// PivotMsgBytes is the size of one pivot-search message (a value and
	// an index; default 16 bytes).
	PivotMsgBytes float64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FactorCost <= 0 {
		out.FactorCost = 1
	}
	if out.SolveCost <= 0 {
		out.SolveCost = 1
	}
	return out
}

// Result reports one simulated kernel execution.
type Result struct {
	// Kernel and Distribution identify the run.
	Kernel, Distribution string
	// Makespan is the simulated completion time.
	Makespan float64
	// CompBound is the busiest processor's pure compute time — no schedule
	// under this distribution can beat it.
	CompBound float64
	// Stats carries traffic and utilization counters.
	Stats *sim.Stats
	// Trace holds the recorded operations when Options.EnableTrace was
	// set; nil otherwise.
	Trace *sim.Trace
}

// Efficiency returns CompBound/Makespan: 1.0 means communication was fully
// hidden behind the (balanced) computation.
func (r *Result) Efficiency() float64 {
	if r.Makespan == 0 {
		return 1
	}
	return r.CompBound / r.Makespan
}

// gridCluster couples a distribution with a simulated cluster, mapping grid
// position (pi,pj) to node pi·q+pj.
type gridCluster struct {
	dist distribution.Distribution
	arr  *grid.Arrangement
	c    *sim.Cluster
	p, q int
}

func newGridCluster(d distribution.Distribution, arr *grid.Arrangement, cfg sim.Config) (*gridCluster, error) {
	p, q := d.Dims()
	if arr.P != p || arr.Q != q {
		return nil, fmt.Errorf("kernels: %d×%d distribution vs %d×%d arrangement", p, q, arr.P, arr.Q)
	}
	// Guard against broken user-supplied Distribution implementations
	// before they corrupt the schedule (built-ins always pass).
	if err := distribution.Validate(d); err != nil {
		return nil, err
	}
	c, err := sim.NewCluster(p*q, cfg)
	if err != nil {
		return nil, err
	}
	return &gridCluster{dist: d, arr: arr, c: c, p: p, q: q}, nil
}

// finish assembles a Result from the cluster state.
func (g *gridCluster) finish(kernel string, trace *sim.Trace) *Result {
	stats := g.c.Snapshot()
	return &Result{
		Kernel:       kernel,
		Distribution: g.dist.Name(),
		Makespan:     stats.Makespan,
		CompBound:    stats.CompBound,
		Stats:        stats,
		Trace:        trace,
	}
}

// SimulateTraced dispatches a kernel simulation by name with tracing
// forced on, returning the result and its trace. Recognized kinds:
// "matmul", "lu", "qr" (LU structure with doubled panel costs),
// "cholesky".
func SimulateTraced(kind string, d distribution.Distribution, arr *grid.Arrangement, opts Options) (*Result, *sim.Trace, error) {
	opts.EnableTrace = true
	var res *Result
	var err error
	switch kind {
	case "matmul":
		res, err = SimulateMM(d, arr, opts)
	case "lu":
		res, err = SimulateLU(d, arr, opts)
	case "qr":
		if opts.FactorCost <= 0 {
			opts.FactorCost = 2
		}
		if opts.SolveCost <= 0 {
			opts.SolveCost = 2
		}
		res, err = SimulateLU(d, arr, opts)
		if res != nil {
			res.Kernel = "qr"
		}
	case "cholesky":
		res, err = SimulateCholesky(d, arr, opts)
	default:
		return nil, nil, fmt.Errorf("kernels: unknown kernel %q", kind)
	}
	if err != nil {
		return nil, nil, err
	}
	return res, res.Trace, nil
}

func (g *gridCluster) node(pi, pj int) int { return pi*g.q + pj }

func (g *gridCluster) owner(bi, bj int) int {
	return g.node(g.dist.Owner(bi, bj))
}

// cycleTime returns the cycle-time of a node id.
func (g *gridCluster) cycleTime(node int) float64 {
	return g.arr.T[node/g.q][node%g.q]
}

// rowReceivers returns, for each block row, the distinct nodes owning at
// least one block in columns [jmin, nbc) of that row — the recipients of a
// horizontal (A- or L-panel) broadcast.
func (g *gridCluster) rowReceivers(nbr, nbc, jmin int) [][]int {
	out := make([][]int, nbr)
	for bi := 0; bi < nbr; bi++ {
		seen := map[int]struct{}{}
		for bj := jmin; bj < nbc; bj++ {
			n := g.owner(bi, bj)
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				out[bi] = append(out[bi], n)
			}
		}
	}
	return out
}

// colReceivers is the column analogue for vertical (B- or U-panel)
// broadcasts over rows [imin, nbr).
func (g *gridCluster) colReceivers(nbr, nbc, imin int) [][]int {
	out := make([][]int, nbc)
	for bj := 0; bj < nbc; bj++ {
		seen := map[int]struct{}{}
		for bi := imin; bi < nbr; bi++ {
			n := g.owner(bi, bj)
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				out[bj] = append(out[bj], n)
			}
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// panelBroadcast delivers a set of blocks — identified by their block-row
// (or block-column) index — to per-block receiver sets, aggregating blocks
// that share both their source and their receiver set into a single message
// (the ScaLAPACK panel message). For product distributions every source's
// blocks share one receiver set (its grid row or column), so each source
// issues exactly one broadcast per step; for the Kalinov–Lastovetsky
// distribution, misaligned row boundaries split the panels into more
// messages involving more parties — precisely the extra-neighbour penalty
// of the paper's Figure 3.
//
// src[i] is the owner of block i, recv[i] its receiver set, ready[i] the
// time block i becomes available at its source. The returned arrivals map
// index i to a node→time map.
func (g *gridCluster) panelBroadcast(kind sim.BroadcastKind, indices []int,
	src func(int) int, recv func(int) []int, ready func(int) float64,
	blockBytes float64) map[int]map[int]float64 {

	type groupKey struct {
		src  int
		recv string
	}
	groups := make(map[groupKey][]int)
	order := make([]groupKey, 0)
	for _, i := range indices {
		rs := recv(i)
		key := groupKey{src: src(i), recv: fmt.Sprint(rs)}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	arrivals := make(map[int]map[int]float64, len(indices))
	for _, key := range order {
		blocks := groups[key]
		// The panel message leaves when its last block is ready.
		at := 0.0
		for _, i := range blocks {
			at = maxf(at, ready(i))
		}
		arr := g.c.Broadcast(kind, key.src, recv(blocks[0]), float64(len(blocks))*blockBytes, at)
		for _, i := range blocks {
			arrivals[i] = arr
		}
	}
	return arrivals
}
