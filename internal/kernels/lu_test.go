package kernels

import (
	"math"
	"testing"

	"hetgrid/internal/core"
	"hetgrid/internal/distribution"
	"hetgrid/internal/grid"
	"hetgrid/internal/sim"
)

// luPanelDist builds the Figure-4 LU panel (B_p=8, B_q=6) on [[1,2],[3,5]]
// with the requested column ordering.
func luPanelDist(t *testing.T, nb int, colOrd distribution.Ordering) distribution.Distribution {
	t.Helper()
	arr := hetArr()
	sol, _, err := core.SolveArrangementExact(arr)
	if err != nil {
		t.Fatal(err)
	}
	pan, err := distribution.NewPanel(sol, 8, 6, distribution.Contiguous, colOrd)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pan.Distribution(nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSimulateLUMakespanAtLeastCompBound(t *testing.T) {
	arr := hetArr()
	for _, mk := range []func() distribution.Distribution{
		func() distribution.Distribution { d, _ := distribution.UniformBlockCyclic(2, 2, 16, 16); return d },
		func() distribution.Distribution { return luPanelDist(t, 16, distribution.Interleaved) },
		func() distribution.Distribution { d, _ := distribution.NewKL(arr, 16, 16); return d },
	} {
		d := mk()
		res, err := SimulateLU(d, arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < res.CompBound-1e-9 {
			t.Fatalf("%s: makespan %v below compute bound %v", d.Name(), res.Makespan, res.CompBound)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s: non-positive makespan", d.Name())
		}
	}
}

func TestSimulateLUPanelBeatsUniform(t *testing.T) {
	arr := hetArr()
	nb := 24
	opts := Options{Net: sim.Config{Latency: 1e-4, ByteTime: 1e-7}, BlockBytes: 8192}
	uni, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	uniRes, err := SimulateLU(uni, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	panRes, err := SimulateLU(luPanelDist(t, nb, distribution.Interleaved), arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if panRes.Makespan >= uniRes.Makespan {
		t.Fatalf("panel LU %v not faster than uniform %v", panRes.Makespan, uniRes.Makespan)
	}
}

func TestSimulateLUInterleavedBeatsContiguous(t *testing.T) {
	// §3.2.2's point: with a contiguous column order, the processors owning
	// the leading panel columns go idle as the factorization proceeds; the
	// 1D-greedy interleaving keeps the shrinking active region balanced.
	arr := hetArr()
	nb := 48
	inter, err := SimulateLU(luPanelDist(t, nb, distribution.Interleaved), arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := SimulateLU(luPanelDist(t, nb, distribution.Contiguous), arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inter.Makespan >= cont.Makespan {
		t.Fatalf("interleaved %v not faster than contiguous %v", inter.Makespan, cont.Makespan)
	}
}

func TestLUOpCountsTotals(t *testing.T) {
	nb := 10
	d, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	factor, solve, update, err := LUOpCounts(d)
	if err != nil {
		t.Fatal(err)
	}
	sumF, sumS, sumU := 0, 0, 0
	for n := range factor {
		sumF += factor[n]
		sumS += solve[n]
		sumU += update[n]
	}
	// Σ_k (nb-k) factors, Σ_k (nb-k-1) solves, Σ_k (nb-k-1)² updates.
	wantF, wantS, wantU := 0, 0, 0
	for k := 0; k < nb; k++ {
		wantF += nb - k
		wantS += nb - k - 1
		wantU += (nb - k - 1) * (nb - k - 1)
	}
	if sumF != wantF || sumS != wantS || sumU != wantU {
		t.Fatalf("op totals (%d,%d,%d), want (%d,%d,%d)", sumF, sumS, sumU, wantF, wantS, wantU)
	}
	if _, _, _, err := LUOpCounts(mustRect(t)); err == nil {
		t.Fatal("non-square block grid accepted")
	}
}

func mustRect(t *testing.T) distribution.Distribution {
	t.Helper()
	d, err := distribution.UniformBlockCyclic(2, 2, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSimulateLUHigherCostFactorsSlower(t *testing.T) {
	arr := hetArr()
	d := luPanelDist(t, 12, distribution.Interleaved)
	base, err := SimulateLU(d, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// QR-like costs: panel and solve roughly twice as expensive.
	qr, err := SimulateLU(d, arr, Options{FactorCost: 2, SolveCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	if qr.Makespan <= base.Makespan {
		t.Fatalf("doubled panel costs did not slow the run: %v vs %v", qr.Makespan, base.Makespan)
	}
}

func TestSimulateLUValidation(t *testing.T) {
	arr := hetArr()
	if _, err := SimulateLU(mustRect(t), arr, Options{}); err == nil {
		t.Fatal("non-square block matrix accepted")
	}
	d, _ := distribution.UniformBlockCyclic(2, 2, 4, 4)
	if _, err := SimulateLU(d, grid.MustNew([][]float64{{1}}), Options{}); err == nil {
		t.Fatal("mismatched arrangement accepted")
	}
}

func TestSimulateLUDeterministic(t *testing.T) {
	arr := hetArr()
	d := luPanelDist(t, 16, distribution.Interleaved)
	opts := Options{Net: sim.Config{Latency: 1e-4, ByteTime: 1e-7, SharedBus: true}, BlockBytes: 4096}
	a, err := SimulateLU(d, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateLU(d, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Stats.Messages != b.Stats.Messages {
		t.Fatal("LU simulation not deterministic")
	}
}

func TestSimulateLUHomogeneous(t *testing.T) {
	// Sanity: homogeneous grid, uniform distribution, zero comm. The
	// makespan must be within a small factor of the compute bound (the
	// critical path adds panel dependencies).
	arr := grid.MustNew([][]float64{{1, 1}, {1, 1}})
	d, _ := distribution.UniformBlockCyclic(2, 2, 16, 16)
	res, err := SimulateLU(d, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency() < 0.5 {
		t.Fatalf("homogeneous LU efficiency %v suspiciously low", res.Efficiency())
	}
	if math.IsNaN(res.Makespan) {
		t.Fatal("NaN makespan")
	}
}
