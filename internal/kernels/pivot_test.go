package kernels

import (
	"testing"

	"hetgrid/internal/distribution"
	"hetgrid/internal/sim"
)

func TestSimulateLUPivotingCostsMore(t *testing.T) {
	arr := hetArr()
	d, err := distribution.UniformBlockCyclic(2, 2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Net: sim.Config{Latency: 0.05, ByteTime: 1e-6}, BlockBytes: 4096}
	plain, err := SimulateLU(d, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Pivoting = true
	pivoted, err := SimulateLU(d, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pivoted.Makespan <= plain.Makespan {
		t.Fatalf("pivoting makespan %v not above plain %v", pivoted.Makespan, plain.Makespan)
	}
	if pivoted.Stats.Messages <= plain.Stats.Messages {
		t.Fatalf("pivoting messages %d not above plain %d",
			pivoted.Stats.Messages, plain.Stats.Messages)
	}
}

func TestSimulateLUPivotingZeroCommStillWorks(t *testing.T) {
	// With a free network, pivoting adds no time (messages are
	// instantaneous) and the makespan still meets the compute bound.
	arr := hetArr()
	d := luPanelDist(t, 16, distribution.Interleaved)
	res, err := SimulateLU(d, arr, Options{Pivoting: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < res.CompBound-1e-9 {
		t.Fatalf("makespan %v below compute bound %v", res.Makespan, res.CompBound)
	}
}

func TestSimulateLUPivotingDeterministic(t *testing.T) {
	arr := hetArr()
	d := luPanelDist(t, 12, distribution.Interleaved)
	opts := Options{Net: sim.Config{Latency: 0.01, ByteTime: 1e-6}, BlockBytes: 2048, Pivoting: true}
	a, err := SimulateLU(d, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateLU(d, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Stats.Messages != b.Stats.Messages {
		t.Fatal("pivoted simulation not deterministic")
	}
}

func TestSimulateLUPivotingPanelStillBeatsUniform(t *testing.T) {
	// The headline result survives the pivoting overhead.
	arr := hetArr()
	nb := 24
	opts := Options{Net: sim.Config{Latency: 0.02, ByteTime: 1e-6}, BlockBytes: 4096, Pivoting: true}
	uni, _ := distribution.UniformBlockCyclic(2, 2, nb, nb)
	uniRes, err := SimulateLU(uni, arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	panRes, err := SimulateLU(luPanelDist(t, nb, distribution.Interleaved), arr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if panRes.Makespan >= uniRes.Makespan {
		t.Fatalf("panel %v not faster than uniform %v under pivoting",
			panRes.Makespan, uniRes.Makespan)
	}
}
