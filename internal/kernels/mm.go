package kernels

import (
	"fmt"

	"hetgrid/internal/distribution"
	"hetgrid/internal/grid"
	"hetgrid/internal/sim"
)

// SimulateMM runs the blocked outer-product matrix multiplication C = A·B
// of §3.1 on an nb×nb block matrix under the given distribution: at step k
// the owners of block column k of A broadcast their blocks horizontally and
// the owners of block row k of B broadcast theirs vertically, then every
// processor updates all of its C blocks with one rank-r contribution.
//
// All three matrices share the distribution (the ScaLAPACK convention), so
// the receivers of each broadcast are exactly the processors owning blocks
// in the corresponding matrix row/column — which, for distributions that
// honour the grid pattern, are the processor's grid row/column, and for the
// Kalinov–Lastovetsky distribution may be larger sets (its extra-neighbour
// penalty appears here with no special-casing).
func SimulateMM(d distribution.Distribution, arr *grid.Arrangement, opts Options) (*Result, error) {
	o := opts.withDefaults()
	nbr, nbc := d.Blocks()
	if nbr != nbc {
		return nil, fmt.Errorf("kernels: MM needs a square block matrix, got %d×%d", nbr, nbc)
	}
	nb := nbr
	g, err := newGridCluster(d, arr, o.Net)
	if err != nil {
		return nil, err
	}
	var tr *sim.Trace
	if o.EnableTrace {
		tr = g.c.EnableTrace()
	}

	// Receivers are step-independent for MM: every step updates the whole
	// C matrix.
	rowRecv := g.rowReceivers(nb, nb, 0)
	colRecv := g.colReceivers(nb, nb, 0)

	// Per-node owned-block counts (each step updates all of them).
	counts := make([]int, g.p*g.q)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			counts[g.owner(bi, bj)]++
		}
	}
	// ownedRows[node] and ownedCols[node]: which block rows/columns the
	// node holds C blocks in (it must receive A/B blocks for those).
	ownedRows := make([][]bool, g.p*g.q)
	ownedCols := make([][]bool, g.p*g.q)
	for n := range ownedRows {
		ownedRows[n] = make([]bool, nb)
		ownedCols[n] = make([]bool, nb)
	}
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			n := g.owner(bi, bj)
			ownedRows[n][bi] = true
			ownedCols[n][bj] = true
		}
	}

	stepDone := make([]float64, g.p*g.q) // completion of the node's previous step
	barrier := 0.0
	for k := 0; k < nb; k++ {
		ready := 0.0
		if o.SyncSteps {
			ready = barrier
		}
		// Horizontal broadcasts of the A(·,k) panel: blocks sharing a
		// source and receiver set travel as one panel message.
		indices := make([]int, nb)
		for i := range indices {
			indices[i] = i
		}
		aArr := g.panelBroadcast(o.Broadcast, indices,
			func(bi int) int { return g.owner(bi, k) },
			func(bi int) []int { return rowRecv[bi] },
			func(int) float64 { return ready },
			o.BlockBytes)
		// Vertical broadcasts of the B(k,·) panel.
		bArr := g.panelBroadcast(o.Broadcast, indices,
			func(bj int) int { return g.owner(k, bj) },
			func(bj int) []int { return colRecv[bj] },
			func(int) float64 { return ready },
			o.BlockBytes)
		// Local rank-r updates.
		for n := 0; n < g.p*g.q; n++ {
			if counts[n] == 0 {
				continue
			}
			start := 0.0
			for bi := 0; bi < nb; bi++ {
				if ownedRows[n][bi] {
					start = maxf(start, aArr[bi][n])
				}
			}
			for bj := 0; bj < nb; bj++ {
				if ownedCols[n][bj] {
					start = maxf(start, bArr[bj][n])
				}
			}
			stepDone[n] = g.c.Compute(n, start, float64(counts[n])*g.cycleTime(n))
		}
		if o.SyncSteps {
			barrier = 0
			for _, t := range stepDone {
				barrier = maxf(barrier, t)
			}
		}
	}
	return g.finish("matmul", tr), nil
}
