package kernels

import (
	"math"
	"testing"

	"hetgrid/internal/distribution"
	"hetgrid/internal/sim"
)

// TestMMVolumeMatchesSimulator ties the closed-form communication analytics
// to the simulator: message and byte counters must agree exactly for every
// distribution family and broadcast kind (the per-send count is
// kind-independent in the panel-aggregated model: each receiver gets the
// panel once).
func TestMMVolumeMatchesSimulator(t *testing.T) {
	arr := hetArr()
	const nb = 16
	const blockBytes = 512.0
	for _, d := range testDistributions(t, nb) {
		vol, err := distribution.MMCommVolume(d, blockBytes)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []sim.BroadcastKind{sim.StarBroadcast, sim.RingBroadcast, sim.TreeBroadcast} {
			res, err := SimulateMM(d, arr, Options{
				Net:        sim.Config{Latency: 1e-3, ByteTime: 1e-7},
				Broadcast:  kind,
				BlockBytes: blockBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Messages != vol.Messages {
				t.Fatalf("%s kind %d: simulator %d messages, analytics %d",
					d.Name(), kind, res.Stats.Messages, vol.Messages)
			}
			if math.Abs(res.Stats.Bytes-vol.Bytes) > 1e-6 {
				t.Fatalf("%s kind %d: simulator %v bytes, analytics %v",
					d.Name(), kind, res.Stats.Bytes, vol.Bytes)
			}
		}
	}
}

// TestLUVolumeMatchesSimulator does the same for the LU kernel.
func TestLUVolumeMatchesSimulator(t *testing.T) {
	arr := hetArr()
	const nb = 12
	const blockBytes = 256.0
	for _, d := range testDistributions(t, nb) {
		vol, err := distribution.LUCommVolume(d, blockBytes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateLU(d, arr, Options{
			Net:        sim.Config{Latency: 1e-3, ByteTime: 1e-7},
			Broadcast:  sim.StarBroadcast,
			BlockBytes: blockBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Messages != vol.Messages {
			t.Fatalf("%s: simulator %d messages, analytics %d", d.Name(), res.Stats.Messages, vol.Messages)
		}
		if math.Abs(res.Stats.Bytes-vol.Bytes) > 1e-6 {
			t.Fatalf("%s: simulator %v bytes, analytics %v", d.Name(), res.Stats.Bytes, vol.Bytes)
		}
	}
}
