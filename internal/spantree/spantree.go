// Package spantree enumerates spanning trees of small connected graphs.
//
// The exact solver of Beaumont et al. (§4.3.1) walks every spanning tree of
// the complete bipartite graph K_{p,q} whose vertices are the row variables
// r_1..r_p and column variables c_1..c_q: each tree fixes a candidate
// solution by turning the tree's inequalities r_i·t_ij·c_j ≤ 1 into
// equalities. K_{p,q} has p^{q-1}·q^{p-1} spanning trees, so enumeration is
// exponential — exactly as the paper states — but constructive and feasible
// for the small grids the exact method targets.
//
// The enumerator uses include/exclude backtracking over the edge list with a
// union-find for cycle detection and a connectivity-based pruning bound, so
// every spanning tree is produced exactly once and dead branches are cut
// early. Two extensions support the parallel branch-and-bound exact solver:
//
//   - Hooks let a caller maintain incremental state (e.g. propagated
//     variable values) as edges join the partial forest, and veto an
//     inclusion to prune every spanning tree extending it.
//   - A prefix of forced include/exclude decisions over the first edges
//     partitions the enumeration space into disjoint classes, so workers can
//     split the trees of a single graph without coordination.
package spantree

import "fmt"

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int
}

// Graph is an undirected graph on vertices 0..N-1 with an explicit edge
// list. Parallel edges are permitted and are treated as distinct.
type Graph struct {
	N     int
	Edges []Edge
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("spantree: negative vertex count %d", n))
	}
	return &Graph{N: n}
}

// AddEdge appends an undirected edge {u, v} and returns its index.
func (g *Graph) AddEdge(u, v int) int {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("spantree: edge (%d,%d) out of range for %d vertices", u, v, g.N))
	}
	if u == v {
		panic(fmt.Sprintf("spantree: self-loop at %d", u))
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v})
	return len(g.Edges) - 1
}

// CompleteBipartite returns K_{p,q}: vertices 0..p-1 are the "row" side,
// p..p+q-1 the "column" side, with edges added in row-major order so that
// the edge index of (i, j) is i*q + j.
func CompleteBipartite(p, q int) *Graph {
	g := NewGraph(p + q)
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			g.AddEdge(i, p+j)
		}
	}
	return g
}

// unionFind is a standard disjoint-set with path halving and union by size,
// plus an undo log so the backtracking enumerator can roll back unions.
type unionFind struct {
	parent []int
	size   []int
	comps  int
	log    []ufOp
}

type ufOp struct {
	child, parent int // child was attached to parent
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n), comps: n}
	uf.reset()
	return uf
}

// reset restores the all-singletons state without reallocating.
func (uf *unionFind) reset() {
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	uf.comps = len(uf.parent)
	uf.log = uf.log[:0]
}

// find returns the representative without path compression (compression
// would complicate undo; the graphs here are tiny).
func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b. It reports whether a merge happened and
// records it for undo.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.comps--
	uf.log = append(uf.log, ufOp{child: rb, parent: ra})
	return true
}

// undo rolls back the most recent union.
func (uf *unionFind) undo() {
	op := uf.log[len(uf.log)-1]
	uf.log = uf.log[:len(uf.log)-1]
	uf.parent[op.child] = op.child
	uf.size[op.parent] -= uf.size[op.child]
	uf.comps++
}

// Hooks lets a caller track incremental state during enumeration and prune
// branches. Both fields may be nil.
type Hooks struct {
	// Include is called whenever edge ei is about to join two components of
	// the partial forest (never for cycle-closing edges). Returning false
	// vetoes the inclusion: the enumerator skips every spanning tree that
	// contains the current partial selection plus ei, does not call Undo for
	// the vetoed edge, and continues with the exclude branch.
	Include func(ei int) bool
	// Undo reverses the most recent accepted Include; calls are strictly
	// LIFO-nested.
	Undo func(ei int)
}

// Enumerator runs repeated spanning-tree enumerations over one graph with
// reusable internal buffers (union-find, probe union-find for the
// connectivity bound, edge stack), so per-call allocation stays O(1). It is
// not safe for concurrent use; give each worker its own Enumerator.
type Enumerator struct {
	g      *Graph
	uf     *unionFind
	probe  *unionFind
	chosen []int
}

// NewEnumerator returns an Enumerator over g. The graph must not be mutated
// while the enumerator is in use.
func NewEnumerator(g *Graph) *Enumerator {
	return &Enumerator{
		g:      g,
		uf:     newUnionFind(g.N),
		probe:  newUnionFind(g.N),
		chosen: make([]int, 0, maxInt(g.N-1, 0)),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Enumerate calls visit once for every spanning tree of the graph that
// matches the prefix: for i < len(prefix), edge i is part of the tree iff
// prefix[i] is true. A nil or empty prefix enumerates every spanning tree.
// The edge-index slice passed to visit is sorted ascending and reused
// between calls; visit must copy it to retain it. If visit returns false the
// enumeration stops early. Returns the number of trees visited.
//
// Trees are produced in lexicographic order of their sorted edge-index
// sequences. Distinct prefixes of equal length describe disjoint tree sets
// whose union (over all 2^len bit patterns) is the full enumeration, which
// is what lets callers partition the search across workers.
//
// A graph with fewer than 2 vertices has exactly one (empty) spanning tree.
// A disconnected graph has none.
func (en *Enumerator) Enumerate(prefix []bool, h *Hooks, visit func(edges []int) bool) int {
	g := en.g
	if len(prefix) > len(g.Edges) {
		panic(fmt.Sprintf("spantree: prefix of %d decisions for %d edges", len(prefix), len(g.Edges)))
	}
	if g.N <= 1 {
		// The empty tree matches only the all-exclude prefix.
		for _, inc := range prefix {
			if inc {
				return 0
			}
		}
		if visit == nil || visit(nil) {
			return 1
		}
		return 0
	}
	need := g.N - 1
	if len(g.Edges) < need {
		return 0
	}
	en.uf.reset()
	en.chosen = en.chosen[:0]
	count := 0
	stopped := false

	// remaining connectivity check: can the edges from index idx onward,
	// together with the current partial forest, still connect the graph?
	canConnect := func(idx int) bool {
		probe := en.probe
		probe.reset()
		for _, e := range en.chosen {
			probe.union(g.Edges[e].U, g.Edges[e].V)
		}
		for i := idx; i < len(g.Edges) && probe.comps > 1; i++ {
			probe.union(g.Edges[i].U, g.Edges[i].V)
		}
		return probe.comps == 1
	}

	var rec func(idx int)
	rec = func(idx int) {
		if stopped {
			return
		}
		if len(en.chosen) == need {
			count++
			if visit != nil && !visit(en.chosen) {
				stopped = true
			}
			return
		}
		// Not enough edges left to finish the tree.
		if len(g.Edges)-idx < need-len(en.chosen) {
			return
		}
		e := g.Edges[idx]
		forced := idx < len(prefix)
		// Branch 1: include edge idx if it joins two components and the
		// caller's hook accepts it.
		if !forced || prefix[idx] {
			if en.uf.union(e.U, e.V) {
				if h == nil || h.Include == nil || h.Include(idx) {
					en.chosen = append(en.chosen, idx)
					rec(idx + 1)
					en.chosen = en.chosen[:len(en.chosen)-1]
					if h != nil && h.Undo != nil {
						h.Undo(idx)
					}
				}
				en.uf.undo()
			}
		}
		// Branch 2: exclude edge idx, but only if connectivity remains
		// achievable without it.
		if (!forced || !prefix[idx]) && canConnect(idx+1) {
			rec(idx + 1)
		}
	}
	rec(0)
	return count
}

// Enumerate calls visit once for every spanning tree of g. See
// Enumerator.Enumerate for the callback contract. Callers running many
// enumerations over the same graph should construct an Enumerator once and
// reuse it to avoid per-call allocation.
func Enumerate(g *Graph, visit func(edges []int) bool) int {
	return NewEnumerator(g).Enumerate(nil, nil, visit)
}

// EnumeratePart enumerates the spanning trees of g in the partition class
// fixed by prefix, with optional pruning hooks. See Enumerator.Enumerate.
func EnumeratePart(g *Graph, prefix []bool, h *Hooks, visit func(edges []int) bool) int {
	return NewEnumerator(g).Enumerate(prefix, h, visit)
}

// PartitionPrefixes returns the 2^bits include/exclude prefixes over the
// first bits edges of a graph with nEdges edges. Every spanning tree matches
// exactly one returned prefix, so enumerating each prefix independently
// (possibly on different workers) covers the full tree set exactly once.
// bits is clamped to [0, min(nEdges, 16)].
func PartitionPrefixes(nEdges, bits int) [][]bool {
	if bits > nEdges {
		bits = nEdges
	}
	if bits > 16 {
		bits = 16
	}
	if bits < 0 {
		bits = 0
	}
	prefixes := make([][]bool, 1<<bits)
	for mask := range prefixes {
		pre := make([]bool, bits)
		for b := 0; b < bits; b++ {
			pre[b] = mask&(1<<b) != 0
		}
		prefixes[mask] = pre
	}
	return prefixes
}

// Count returns the number of spanning trees of g, computed by enumeration.
// For K_{p,q} the closed form p^{q-1}·q^{p-1} is available via
// CountCompleteBipartite and is used by tests to cross-check this function.
func Count(g *Graph) int {
	return Enumerate(g, nil)
}

// CountCompleteBipartite returns the number of spanning trees of K_{p,q},
// p^{q-1} * q^{p-1} (Scoins' formula). Panics on overflow-scale inputs
// (result must fit an int).
func CountCompleteBipartite(p, q int) int {
	if p <= 0 || q <= 0 {
		return 0
	}
	result := 1
	for i := 0; i < q-1; i++ {
		result = mulCheck(result, p)
	}
	for i := 0; i < p-1; i++ {
		result = mulCheck(result, q)
	}
	return result
}

func mulCheck(a, b int) int {
	c := a * b
	if a != 0 && c/a != b {
		panic("spantree: spanning tree count overflows int")
	}
	return c
}

// AdjacencyFromTree converts a set of edge indices (as produced by
// Enumerate) into an adjacency list on g's vertices. Useful for walking the
// tree to propagate variable values.
func AdjacencyFromTree(g *Graph, edges []int) [][]int {
	adj := make([][]int, g.N)
	for _, ei := range edges {
		e := g.Edges[ei]
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}
