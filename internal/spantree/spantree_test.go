package spantree

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestCountTriangle(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	if got := Count(g); got != 3 {
		t.Fatalf("triangle has %d spanning trees, want 3", got)
	}
}

func TestCountPath(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if got := Count(g); got != 1 {
		t.Fatalf("path has %d spanning trees, want 1", got)
	}
}

func TestCountCompleteGraph(t *testing.T) {
	// Cayley: K_n has n^{n-2} spanning trees.
	for n := 2; n <= 6; n++ {
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.AddEdge(i, j)
			}
		}
		want := 1
		for i := 0; i < n-2; i++ {
			want *= n
		}
		if got := Count(g); got != want {
			t.Fatalf("K_%d: got %d trees, want %d", n, got, want)
		}
	}
}

func TestCountCompleteBipartiteMatchesFormula(t *testing.T) {
	for p := 1; p <= 4; p++ {
		for q := 1; q <= 4; q++ {
			g := CompleteBipartite(p, q)
			want := CountCompleteBipartite(p, q)
			if got := Count(g); got != want {
				t.Fatalf("K_{%d,%d}: enumerated %d, formula %d", p, q, got, want)
			}
		}
	}
}

func TestCountCompleteBipartiteFormula(t *testing.T) {
	cases := []struct{ p, q, want int }{
		{1, 1, 1}, {2, 2, 4}, {2, 3, 12}, {3, 3, 81}, {3, 4, 432}, {4, 4, 4096},
		{0, 3, 0}, {3, 0, 0},
	}
	for _, c := range cases {
		if got := CountCompleteBipartite(c.p, c.q); got != c.want {
			t.Errorf("CountCompleteBipartite(%d,%d) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

func TestDisconnectedGraphNoTrees(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if got := Count(g); got != 0 {
		t.Fatalf("disconnected graph: %d trees, want 0", got)
	}
}

func TestTrivialGraphs(t *testing.T) {
	if got := Count(NewGraph(0)); got != 1 {
		t.Fatalf("empty graph: %d, want 1", got)
	}
	if got := Count(NewGraph(1)); got != 1 {
		t.Fatalf("single vertex: %d, want 1", got)
	}
	if got := Count(NewGraph(2)); got != 0 {
		t.Fatalf("two isolated vertices: %d, want 0", got)
	}
}

func TestEnumerateTreesAreValid(t *testing.T) {
	g := CompleteBipartite(3, 3)
	seen := make(map[string]bool)
	Enumerate(g, func(edges []int) bool {
		if len(edges) != g.N-1 {
			t.Fatalf("tree with %d edges, want %d", len(edges), g.N-1)
		}
		// Must be connected and acyclic: n-1 edges + connected suffices.
		adj := AdjacencyFromTree(g, edges)
		visited := make([]bool, g.N)
		stack := []int{0}
		visited[0] = true
		n := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					n++
					stack = append(stack, w)
				}
			}
		}
		if n != g.N {
			t.Fatalf("tree not connected: %v", edges)
		}
		// No duplicates across the enumeration.
		key := fmt.Sprint(edges)
		if seen[key] {
			t.Fatalf("tree %v enumerated twice", edges)
		}
		seen[key] = true
		// Edges sorted ascending (enumeration order guarantee).
		if !sort.IntsAreSorted(edges) {
			t.Fatalf("edges not sorted: %v", edges)
		}
		return true
	})
	if len(seen) != 81 {
		t.Fatalf("K_{3,3}: saw %d distinct trees, want 81", len(seen))
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := CompleteBipartite(3, 3)
	calls := 0
	got := Enumerate(g, func([]int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 || got != 5 {
		t.Fatalf("early stop: calls=%d returned=%d, want 5/5", calls, got)
	}
}

func TestEnumerateVisitSliceReused(t *testing.T) {
	// Documented behaviour: the callback slice is reused, so retained copies
	// must be explicit. Verify a copy survives while the raw slice mutates.
	g := CompleteBipartite(2, 2)
	var first []int
	var firstCopy []int
	i := 0
	Enumerate(g, func(edges []int) bool {
		if i == 0 {
			first = edges
			firstCopy = append([]int(nil), edges...)
		}
		i++
		return true
	})
	if i != 4 {
		t.Fatalf("K_{2,2} has %d trees, want 4", i)
	}
	same := len(first) == len(firstCopy)
	if same {
		for k := range first {
			if first[k] != firstCopy[k] {
				same = false
				break
			}
		}
	}
	_ = same // The raw slice may or may not differ; the copy is the contract.
	if len(firstCopy) != 3 {
		t.Fatalf("spanning tree of K_{2,2} has %d edges, want 3", len(firstCopy))
	}
}

func TestParallelEdgesDistinct(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if got := Count(g); got != 2 {
		t.Fatalf("two parallel edges: %d trees, want 2", got)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for self-loop")
		}
	}()
	NewGraph(2).AddEdge(1, 1)
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph(2).AddEdge(0, 2)
}

func TestCompleteBipartiteEdgeIndexing(t *testing.T) {
	p, q := 3, 4
	g := CompleteBipartite(p, q)
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			e := g.Edges[i*q+j]
			if e.U != i || e.V != p+j {
				t.Fatalf("edge %d = %+v, want {%d,%d}", i*q+j, e, i, p+j)
			}
		}
	}
}

func TestKirchhoffCrossCheckRandomGraphs(t *testing.T) {
	// Cross-check enumeration against the Matrix-Tree theorem via integer
	// determinant of the reduced Laplacian (computed with fraction-free
	// Gaussian elimination, Bareiss).
	f := func(seed int64) bool {
		n := 3 + int(uint(seed)%4)
		g := NewGraph(n)
		// Ring to guarantee connectivity plus pseudo-random chords.
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		s := uint(seed)
		for i := 0; i < n; i++ {
			for j := i + 2; j < n; j++ {
				if (i+1)%n == j || (j+1)%n == i {
					continue
				}
				s = s*1103515245 + 12345
				if s%3 == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		return Count(g) == kirchhoff(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// kirchhoff computes the spanning tree count as det of the reduced
// Laplacian, using Bareiss fraction-free elimination over int64.
func kirchhoff(g *Graph) int {
	n := g.N - 1
	l := make([][]int64, n)
	for i := range l {
		l[i] = make([]int64, n)
	}
	deg := make([]int64, g.N)
	adj := make(map[[2]int]int64)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
		key := [2]int{e.U, e.V}
		if e.U > e.V {
			key = [2]int{e.V, e.U}
		}
		adj[key]++
	}
	for i := 0; i < n; i++ {
		l[i][i] = deg[i]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			key := [2]int{i, j}
			if i > j {
				key = [2]int{j, i}
			}
			l[i][j] = -adj[key]
		}
	}
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if l[k][k] == 0 {
			// Pivot: find a row below with nonzero entry; determinant sign
			// flips, but tree counts are positive so a zero pivot with no
			// replacement means det 0.
			swapped := false
			for r := k + 1; r < n; r++ {
				if l[r][k] != 0 {
					l[k], l[r] = l[r], l[k]
					for c := range l[k] {
						l[k][c] = -l[k][c]
					}
					swapped = true
					break
				}
			}
			if !swapped {
				return 0
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				l[i][j] = (l[i][j]*l[k][k] - l[i][k]*l[k][j]) / prev
			}
			l[i][k] = 0
		}
		prev = l[k][k]
	}
	return int(l[n-1][n-1])
}

func TestPartitionPrefixesCoverEnumeration(t *testing.T) {
	// The union of the per-prefix enumerations must equal the full
	// enumeration exactly — same trees, each exactly once — for every
	// partition width. This is the disjoint-cover property the parallel
	// exact solver relies on.
	g := CompleteBipartite(3, 3)
	full := make(map[string]bool)
	Enumerate(g, func(edges []int) bool {
		full[fmt.Sprint(edges)] = true
		return true
	})
	for bits := 0; bits <= 5; bits++ {
		seen := make(map[string]bool)
		total := 0
		for _, prefix := range PartitionPrefixes(len(g.Edges), bits) {
			total += EnumeratePart(g, prefix, nil, func(edges []int) bool {
				key := fmt.Sprint(edges)
				if seen[key] {
					t.Fatalf("bits=%d: tree %v in two partition classes", bits, edges)
				}
				seen[key] = true
				return true
			})
		}
		if total != len(full) || len(seen) != len(full) {
			t.Fatalf("bits=%d: partitions produced %d trees (%d distinct), full enumeration has %d",
				bits, total, len(seen), len(full))
		}
		for key := range seen {
			if !full[key] {
				t.Fatalf("bits=%d: partition produced tree %s not in full enumeration", bits, key)
			}
		}
	}
}

func TestPartitionPrefixesClamped(t *testing.T) {
	if got := len(PartitionPrefixes(4, 10)); got != 16 {
		t.Fatalf("bits clamped to nEdges: %d prefixes, want 16", got)
	}
	if got := len(PartitionPrefixes(100, 20)); got != 1<<16 {
		t.Fatalf("bits clamped to 16: %d prefixes, want %d", got, 1<<16)
	}
	if got := len(PartitionPrefixes(5, -3)); got != 1 {
		t.Fatalf("negative bits: %d prefixes, want 1", got)
	}
}

func TestHooksVetoPrunesSubtree(t *testing.T) {
	// Vetoing every inclusion of edge 0 must remove exactly the trees
	// containing edge 0, and Undo must never fire for vetoed edges.
	g := CompleteBipartite(2, 3)
	withEdge0 := 0
	total := Enumerate(g, func(edges []int) bool {
		for _, e := range edges {
			if e == 0 {
				withEdge0++
				break
			}
		}
		return true
	})
	undos := 0
	h := &Hooks{
		Include: func(ei int) bool { return ei != 0 },
		Undo: func(ei int) {
			if ei == 0 {
				t.Fatal("Undo called for a vetoed edge")
			}
			undos++
		},
	}
	got := EnumeratePart(g, nil, h, func([]int) bool { return true })
	if got != total-withEdge0 {
		t.Fatalf("veto of edge 0: %d trees, want %d (%d total - %d containing it)",
			got, total-withEdge0, total, withEdge0)
	}
	if undos == 0 {
		t.Fatal("Undo never called for accepted edges")
	}
}

func TestHooksIncludeUndoBalanced(t *testing.T) {
	// Accepted includes and undos must pair up LIFO; at the end the stack
	// is empty.
	g := CompleteBipartite(3, 3)
	var stack []int
	h := &Hooks{
		Include: func(ei int) bool {
			stack = append(stack, ei)
			return true
		},
		Undo: func(ei int) {
			if len(stack) == 0 || stack[len(stack)-1] != ei {
				t.Fatalf("Undo(%d) does not match include stack %v", ei, stack)
			}
			stack = stack[:len(stack)-1]
		},
	}
	n := EnumeratePart(g, nil, h, func([]int) bool { return true })
	if n != 81 {
		t.Fatalf("hooked enumeration visited %d trees, want 81", n)
	}
	if len(stack) != 0 {
		t.Fatalf("include stack not empty after enumeration: %v", stack)
	}
}

func TestEnumeratorReuse(t *testing.T) {
	// One Enumerator must give identical results across repeated calls and
	// mixed prefix/no-prefix use.
	g := CompleteBipartite(3, 4)
	en := NewEnumerator(g)
	first := en.Enumerate(nil, nil, nil)
	if first != CountCompleteBipartite(3, 4) {
		t.Fatalf("first enumeration: %d trees, want %d", first, CountCompleteBipartite(3, 4))
	}
	partial := 0
	for _, prefix := range PartitionPrefixes(len(g.Edges), 3) {
		partial += en.Enumerate(prefix, nil, nil)
	}
	if partial != first {
		t.Fatalf("partitioned reuse: %d trees, want %d", partial, first)
	}
	if again := en.Enumerate(nil, nil, nil); again != first {
		t.Fatalf("third enumeration: %d trees, want %d", again, first)
	}
}

func TestPrefixTrivialGraph(t *testing.T) {
	// A graph with one vertex has a single empty tree; it matches only the
	// all-exclude prefix.
	g := NewGraph(1)
	if got := EnumeratePart(g, nil, nil, nil); got != 1 {
		t.Fatalf("trivial graph, nil prefix: %d, want 1", got)
	}
}
