package spantree

import "testing"

func BenchmarkEnumerateK33(b *testing.B) {
	g := CompleteBipartite(3, 3)
	for i := 0; i < b.N; i++ {
		if got := Count(g); got != 81 {
			b.Fatalf("count %d", got)
		}
	}
}

func BenchmarkEnumerateK34(b *testing.B) {
	g := CompleteBipartite(3, 4)
	for i := 0; i < b.N; i++ {
		if got := Count(g); got != 432 {
			b.Fatalf("count %d", got)
		}
	}
}

func BenchmarkEnumerateK44(b *testing.B) {
	g := CompleteBipartite(4, 4)
	for i := 0; i < b.N; i++ {
		if got := Count(g); got != 4096 {
			b.Fatalf("count %d", got)
		}
	}
}
