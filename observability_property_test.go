package hetgrid

import (
	"math"
	"math/rand"
	"testing"

	"hetgrid/internal/matrix"
	"hetgrid/internal/obs"
)

// TestObservabilityPropertyRandomGrids runs 100 random heterogeneous grids
// through the real engine with spans and metrics on, and checks the
// measured load-balance observables against the paper's constraint shape:
// every rank's busy time is bounded by the slowest rank's (the scaled form
// of r_i·t_ij·c_j ≤ 1 — no processor exceeds the per-step budget the
// makespan normalizes to), the imbalance gauge is ≥ 1 whenever any work
// was measured, and both BusyTime and Imbalance agree exactly with a
// recomputation from the raw spans ExecStats carries.
func TestObservabilityPropertyRandomGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const nb, r = 4, 2
	for run := 0; run < 100; run++ {
		p := 1 + rng.Intn(3)
		q := 1 + rng.Intn(3)
		times := make([]float64, p*q)
		for i := range times {
			times[i] = 0.5 + 3.5*rng.Float64()
		}
		plan, err := Balance(times, p, q, StrategyHeuristic)
		if err != nil {
			t.Fatalf("run %d (%d×%d %v): %v", run, p, q, times, err)
		}
		d, err := KalinovLastovetsky(plan, nb, nb)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}

		reg := NewMetrics()
		opts := []Option{WithSpans(), WithMetrics(reg)}
		var stats *ExecStats
		n := nb * r
		switch run % 3 {
		case 0:
			a, b := matrix.Random(n, n, rng), matrix.Random(n, n, rng)
			_, stats, err = DistributedMultiply(d, a, b, r, opts...)
		case 1:
			_, stats, err = DistributedFactor(LU, d, matrix.RandomWellConditioned(n, rng), r, opts...)
		case 2:
			_, stats, err = DistributedFactor(Cholesky, d, matrix.RandomSPD(n, rng), r, opts...)
		}
		if err != nil {
			t.Fatalf("run %d (%d×%d): %v", run, p, q, err)
		}

		busy := stats.BusyTime
		if len(busy) != p*q {
			t.Fatalf("run %d: %d busy-time entries for %d ranks", run, len(busy), p*q)
		}
		maxBusy := 0.0
		for i, b := range busy {
			if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
				t.Fatalf("run %d: rank %d busy time %g", run, i, b)
			}
			maxBusy = math.Max(maxBusy, b)
		}
		// Scaled constraint shape: with the slowest rank as the unit budget,
		// every rank's measured load must fit inside it.
		for i, b := range busy {
			if b > maxBusy {
				t.Fatalf("run %d: rank %d load %g exceeds the budget %g", run, i, b, maxBusy)
			}
		}
		if maxBusy > 0 && stats.Imbalance < 1 {
			t.Fatalf("run %d: imbalance %g < 1 with work measured", run, stats.Imbalance)
		}

		// The gauge must be derivable from the raw spans alone: replay the
		// store's busy-time accumulation (same span order, same additions,
		// so the floats must match bit for bit).
		recomputed := make([]float64, p*q)
		for _, sp := range stats.Spans {
			if sp.Kind == obs.SpanCompute && sp.Rank >= 0 && sp.Rank < p*q {
				recomputed[sp.Rank] += sp.End - sp.Start
			}
		}
		for i := range recomputed {
			if recomputed[i] != busy[i] {
				t.Fatalf("run %d: rank %d BusyTime %g but spans recompute to %g", run, i, busy[i], recomputed[i])
			}
		}
		if want := obs.Imbalance(recomputed); stats.Imbalance != want {
			t.Fatalf("run %d: Imbalance %g, recomputed from spans %g", run, stats.Imbalance, want)
		}

		// And the published gauge must carry the same value.
		gauge := reg.Gauge("hetgrid_load_imbalance_ratio", "", "measured max/mean per-rank busy time of the last run (paper Obj1; 1 = perfect balance)")
		if got := gauge.Value(); got != stats.Imbalance {
			t.Fatalf("run %d: imbalance gauge %g, stats %g", run, got, stats.Imbalance)
		}
	}
}
