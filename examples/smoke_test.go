// Smoke coverage for the example programs: every directory under
// examples/ must build and run to completion with a zero exit status.
// The examples double as end-to-end tests of the public API surface —
// a signature change that breaks one of them breaks this test, not a
// user's first copy-paste.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example programs take seconds each; skipped with -short")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		ran++
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("examples/%s produced no output", name)
			}
		})
	}
	if ran < 7 {
		t.Fatalf("found only %d example directories, expected at least 7", ran)
	}
}

// TestMultiuserDriftDriver pins the multi-tenant drift driver's contract:
// the drift-rebalanced runs must actually migrate, and every run must
// report bit-identity with the serial factorization (the driver exits
// non-zero otherwise).
func TestMultiuserDriftDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real factorizations; skipped with -short")
	}
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", "run", "./examples/multiuser")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/multiuser: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "migrations 1") {
		t.Fatalf("driver never migrated:\n%s", text)
	}
	if strings.Contains(text, "bit-identical false") {
		t.Fatalf("driver reported a divergent run:\n%s", text)
	}
	if !strings.Contains(text, "two concurrent tenants") {
		t.Fatalf("driver skipped the concurrent-tenant section:\n%s", text)
	}
}
