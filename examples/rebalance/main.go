// Online re-balancing on a multi-user machine: a long matrix
// multiplication starts on four dedicated, identical workstations; midway,
// other users load two of them. The adaptive policy weighs the block moves
// against the projected savings and redistributes only when it pays.
package main

import (
	"fmt"
	"log"

	"hetgrid"
)

func main() {
	log.SetFlags(0)

	const nb = 32
	opts := hetgrid.SimOptions{Latency: 0.02, ByteTime: 1e-6, BlockBytes: 8 * 32 * 32}

	// Job start: all machines dedicated, uniform layout is optimal.
	cur, err := hetgrid.Uniform(2, 2, nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job started: uniform layout on 4 dedicated machines, %d steps\n\n", nb)

	// Midway checkpoints with measured effective cycle-times.
	checkpoints := []struct {
		step     int
		measured []float64
		label    string
	}{
		{8, []float64{1, 1, 1, 1}, "step 8: still dedicated"},
		{12, []float64{1, 1, 1, 1.2}, "step 12: light load on one box"},
		{16, []float64{1, 1, 3, 5}, "step 16: two boxes heavily loaded"},
		{30, []float64{1, 1, 3, 5}, "step 30: same load, but the job is nearly done"},
	}
	for _, cp := range checkpoints {
		remaining := nb - cp.step
		dec, err := hetgrid.ShouldRebalance(cur, cp.measured, remaining, opts, 1.1)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "stay"
		if dec.Redistribute {
			verdict = fmt.Sprintf("REBALANCE (move %d blocks, %.1f time units)",
				dec.MovedBlocks, dec.RedistTime)
		}
		fmt.Printf("%-48s per-step %5.1f → %5.1f   stay %7.1f vs move %7.1f   → %s\n",
			cp.label, dec.PerStepCur, dec.PerStepNew, dec.StayCost, dec.MoveCost, verdict)
		if dec.Redistribute {
			cur = dec.NewDist
		}
	}

	fmt.Println("\nThe policy moves exactly once: when heavy load appears with enough")
	fmt.Println("work left to amortize the block transfers, and never near the finish.")
}
