// Real distributed-memory execution: every grid processor runs as its own
// goroutine with strictly private block storage, and all data moves through
// messages — the miniature of the heterogeneous ScaLAPACK the paper lays
// groundwork for. The example factors a system under the paper's panel
// distribution, solves it, and reports the actual message traffic of each
// distribution family.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"hetgrid"
	"hetgrid/internal/matrix"
)

func main() {
	log.SetFlags(0)

	plan, err := hetgrid.Balance([]float64{1, 2, 3, 5}, 2, 2, hetgrid.StrategyExact)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := plan.Panel(4, 3, hetgrid.LU)
	if err != nil {
		log.Fatal(err)
	}

	const nb, r = 8, 8
	n := nb * r
	rng := rand.New(rand.NewSource(3))
	a := matrix.RandomWellConditioned(n, rng)
	xTrue := matrix.Random(n, 1, rng)
	rhs := matrix.Mul(a, xTrue)

	fmt.Printf("solving a %d×%d system on 4 goroutine 'workstations' (2×2 grid)\n\n", n, n)

	panel, err := layout.Distribute(nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := hetgrid.Uniform(2, 2, nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	kl, err := hetgrid.KalinovLastovetsky(plan, nb, nb)
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []struct {
		name string
		d    hetgrid.Distribution
	}{
		{"uniform block-cyclic", uniform},
		{"kalinov-lastovetsky", kl},
		{"heterogeneous panel", panel},
	} {
		packed, stats, err := hetgrid.DistributedFactorLU(c.d, a, r)
		if err != nil {
			log.Fatal(err)
		}
		x := rhs.Clone()
		packed.SolveLowerUnit(x)
		if err := packed.SolveUpper(x); err != nil {
			log.Fatal(err)
		}
		maxErr := 0.0
		for i := 0; i < n; i++ {
			maxErr = math.Max(maxErr, math.Abs(x.At(i, 0)-xTrue.At(i, 0)))
		}
		fmt.Printf("%-22s %5d messages, %8d bytes moved, max |x-x*| = %.2e\n",
			c.name, stats.Messages, stats.Bytes, maxErr)
	}

	// The distributed product as well, with a correctness check. Tracing is
	// switched on here, so the stats also carry the per-rank breakdown and a
	// timestamped event log in the simulator's trace format.
	b := matrix.Random(n, n, rng)
	cMat, stats, err := hetgrid.DistributedMultiply(panel, a, b, r,
		hetgrid.WithBroadcast(hetgrid.TreeBroadcast), hetgrid.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	diff := matrix.Sub(cMat, matrix.Mul(a, b)).MaxAbs()
	fmt.Printf("\ndistributed C = A·B on the panel layout (tree broadcast): %d messages, max |ΔC| = %.2e\n",
		stats.Messages, diff)

	fmt.Println("\nper-rank traffic (instrumented transport):")
	fmt.Printf("  %4s %22s %22s\n", "rank", "sent (msgs / bytes)", "recv (msgs / bytes)")
	for i, rs := range stats.Ranks {
		fmt.Printf("  %4d %10d / %9d %10d / %9d\n", i, rs.MsgsSent, rs.BytesSent, rs.MsgsRecv, rs.BytesRecv)
	}

	traceFile := filepath.Join(os.TempDir(), "distributed-mm-trace.json")
	f, err := os.Create(traceFile)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := stats.Trace.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote a chrome://tracing timeline of the run to %s\n", traceFile)
	fmt.Println("every block lived on exactly one goroutine; results came back via messages only")
}
