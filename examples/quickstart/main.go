// Quickstart: balance a small heterogeneous grid, build the block-panel
// distribution, and simulate a matrix multiplication against the uniform
// ScaLAPACK baseline.
package main

import (
	"fmt"
	"log"

	"hetgrid"
)

func main() {
	log.SetFlags(0)

	// Four workstations: cycle-times are the (normalized) time each needs
	// to update one r×r matrix block — the machine with cycle-time 1 is 5×
	// faster than the one with cycle-time 5.
	times := []float64{1, 2, 3, 5}

	// 1. Arrange them on a 2×2 grid and balance the load.
	plan, err := hetgrid.Balance(times, 2, 2, hetgrid.StrategyAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrangement:\n%s", plan.Arrangement())
	fmt.Printf("row shares %v, column shares %v\n", plan.RowShares(), plan.ColShares())
	fmt.Printf("mean processor utilization: %.1f%%\n\n", 100*plan.MeanWorkload())

	// 2. Turn the rational shares into a concrete block panel.
	layout, err := plan.BestPanel(12, 12, hetgrid.MatMul)
	if err != nil {
		log.Fatal(err)
	}
	bp, bq := layout.Size()
	fmt.Printf("best panel: %d×%d blocks, efficiency %.1f%%\n", bp, bq, 100*layout.Efficiency())
	fmt.Printf("panel rows per grid row: %v, panel columns per grid column: %v\n\n",
		layout.RowCounts(), layout.ColCounts())

	// 3. Distribute a 24×24 block matrix and simulate C = A·B.
	const nb = 24
	panelDist, err := layout.Distribute(nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	uniformDist, err := hetgrid.Uniform(2, 2, nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	opts := hetgrid.SimOptions{Latency: 0.05, ByteTime: 1e-5, BlockBytes: 8 * 32 * 32}
	for _, c := range []struct {
		name string
		d    hetgrid.Distribution
	}{{"uniform block-cyclic", uniformDist}, {"heterogeneous panel", panelDist}} {
		res, err := hetgrid.Simulate(hetgrid.MatMul, c.d, plan, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s makespan %10.1f  (compute bound %10.1f, %d messages)\n",
			c.name, res.Makespan, res.CompBound, res.Stats.Messages)
	}
}
