// Heterogeneous matrix multiplication across a department's network of
// workstations: nine machines of three generations are arranged on a 3×3
// grid, the three distribution strategies are compared on both network
// fabrics, and the blocked algorithm is executed numerically to check that
// the distribution does not change the result.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetgrid"
	"hetgrid/internal/matrix"
)

func main() {
	log.SetFlags(0)

	// The HNOW of the paper's introduction: a few recent machines, a
	// middle generation, and some old ones nobody wants to retire.
	// Cycle-times relative to the fastest box.
	machines := []struct {
		name string
		t    float64
	}{
		{"zeus", 1.0}, {"hera", 1.0}, {"apollo", 1.5},
		{"athena", 2.0}, {"ares", 2.5}, {"hermes", 3.0},
		{"demeter", 4.0}, {"hestia", 5.0}, {"iris", 6.0},
	}
	times := make([]float64, len(machines))
	for i, m := range machines {
		times[i] = m.t
	}
	fmt.Println("machines:")
	for _, m := range machines {
		fmt.Printf("  %-8s cycle-time %.1f\n", m.name, m.t)
	}

	plan, err := hetgrid.Balance(times, 3, 3, hetgrid.StrategyHeuristic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheuristic arrangement (converged in %d steps):\n%s", plan.Iterations, plan.Arrangement())
	fmt.Printf("mean utilization: %.1f%%\n\n", 100*plan.MeanWorkload())

	layout, err := plan.BestPanel(12, 12, hetgrid.MatMul)
	if err != nil {
		log.Fatal(err)
	}

	const nb = 30
	panelDist, err := layout.Distribute(nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	uniformDist, err := hetgrid.Uniform(3, 3, nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	klDist, err := hetgrid.KalinovLastovetsky(plan, nb, nb)
	if err != nil {
		log.Fatal(err)
	}

	for _, net := range []struct {
		name string
		bus  bool
	}{{"switched (Myrinet-like)", false}, {"shared bus (Ethernet)", true}} {
		fmt.Printf("network: %s\n", net.name)
		opts := hetgrid.SimOptions{Latency: 0.05, ByteTime: 1e-5, SharedBus: net.bus, BlockBytes: 8 * 32 * 32}
		var uniform float64
		for _, c := range []struct {
			name string
			d    hetgrid.Distribution
		}{
			{"uniform block-cyclic", uniformDist},
			{"kalinov-lastovetsky", klDist},
			{"heterogeneous panel", panelDist},
		} {
			res, err := hetgrid.Simulate(hetgrid.MatMul, c.d, plan, opts)
			if err != nil {
				log.Fatal(err)
			}
			if uniform == 0 {
				uniform = res.Makespan
			}
			pattern := "grid"
			if !hetgrid.Neighbors(c.d).GridPattern {
				pattern = "extra-neighbour"
			}
			fmt.Printf("  %-22s makespan %9.1f  speedup %4.2fx  msgs %4d  pattern %s\n",
				c.name, res.Makespan, uniform/res.Makespan, res.Stats.Messages, pattern)
		}
		fmt.Println()
	}

	// Numeric check: the blocked product under the panel distribution
	// matches a straightforward serial multiply.
	rng := rand.New(rand.NewSource(1))
	const r = 8 // block size in elements
	a := matrix.Random(nb*r, nb*r, rng)
	b := matrix.Random(nb*r, nb*r, rng)
	c, err := hetgrid.Multiply(panelDist, a, b)
	if err != nil {
		log.Fatal(err)
	}
	diff := matrix.Sub(c, matrix.Mul(a, b)).MaxAbs()
	fmt.Printf("numeric check: max |C_panel - C_serial| = %.2e on a %d×%d matrix\n", diff, nb*r, nb*r)
}
