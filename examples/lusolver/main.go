// Dense linear system solver on a heterogeneous 2D grid: factor A = L·U
// with the blocked right-looking algorithm under the paper's panel
// distribution, solve A·x = b, and show why the panel-column interleaving
// (the ABAABA ordering of §3.2.2) matters once the factorization's active
// region starts shrinking.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hetgrid"
	"hetgrid/internal/matrix"
)

func main() {
	log.SetFlags(0)

	// The paper's running 2×2 example: cycle-times 1, 2, 3, 5 (no perfect
	// balance exists for these).
	plan, err := hetgrid.Balance([]float64{1, 2, 3, 5}, 2, 2, hetgrid.StrategyExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrangement:\n%s", plan.Arrangement())
	fmt.Printf("workload matrix (1.00 = always busy):\n")
	for _, row := range plan.Workload() {
		fmt.Printf("  %.2f\n", row)
	}

	layout, err := plan.Panel(8, 6, hetgrid.LU)
	if err != nil {
		log.Fatal(err)
	}
	order := layout.ColOrder()
	letters := make([]byte, len(order))
	for i, o := range order {
		letters[i] = byte('A' + o)
	}
	fmt.Printf("\nLU panel 8×6, column order %s (paper: ABAABA)\n\n", letters)

	// Factor and solve numerically.
	const nb, r = 12, 6
	n := nb * r
	d, err := layout.Distribute(nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	a := matrix.RandomWellConditioned(n, rng)
	xTrue := matrix.Random(n, 1, rng)
	b := matrix.Mul(a, xTrue)

	f, err := hetgrid.Factor(hetgrid.LU, d, a)
	if err != nil {
		log.Fatal(err)
	}
	packed := f.Packed()
	fmt.Printf("block operations per processor: %v\n", f.Ops())

	// Forward/back substitution with the packed factors.
	x := b.Clone()
	packed.SolveLowerUnit(x)
	if err := packed.SolveUpper(x); err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := 0; i < n; i++ {
		if e := math.Abs(x.At(i, 0) - xTrue.At(i, 0)); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("solve A·x = b for n = %d: max |x - x_true| = %.2e\n\n", n, maxErr)

	// Simulated timings: contiguous vs interleaved panel columns, and the
	// uniform baseline.
	const simNB = 48
	opts := hetgrid.SimOptions{Latency: 0.02, ByteTime: 1e-5, BlockBytes: 8 * r * r}
	uniform, err := hetgrid.Uniform(2, 2, simNB, simNB)
	if err != nil {
		log.Fatal(err)
	}
	interleaved, err := layout.Distribute(simNB, simNB)
	if err != nil {
		log.Fatal(err)
	}
	contigLayout, err := plan.Panel(8, 6, hetgrid.MatMul) // MatMul layout = contiguous ordering
	if err != nil {
		log.Fatal(err)
	}
	contiguous, err := contigLayout.Distribute(simNB, simNB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated LU on a %d×%d block matrix:\n", simNB, simNB)
	var base float64
	for _, c := range []struct {
		name string
		d    hetgrid.Distribution
	}{
		{"uniform block-cyclic", uniform},
		{"panel, contiguous order", contiguous},
		{"panel, interleaved (ABAABA)", interleaved},
	} {
		res, err := hetgrid.Simulate(hetgrid.LU, c.d, plan, opts)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Makespan
		}
		fmt.Printf("  %-28s makespan %9.1f  speedup %4.2fx\n", c.name, res.Makespan, base/res.Makespan)
	}
}
