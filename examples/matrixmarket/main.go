// Interoperating with standard tooling: write a system in MatrixMarket
// format, read it back (as any external generator would produce it),
// balance the grid for the measured machine speeds, factor with the
// distributed engine, and save the factors as MatrixMarket again.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"hetgrid"
	"hetgrid/internal/matrix"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "hetgrid-mm")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Produce an input system the way an external tool would: a
	// MatrixMarket file on disk.
	const nb, r = 8, 6
	n := nb * r
	rng := rand.New(rand.NewSource(11))
	a := matrix.RandomWellConditioned(n, rng)
	inPath := filepath.Join(dir, "system.mtx")
	if err := writeFile(inPath, a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d×%d, MatrixMarket array format)\n", inPath, n, n)

	// 2. Read it back and factor it on the heterogeneous grid.
	loaded, err := readFile(inPath)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := hetgrid.Balance([]float64{1, 2, 3, 5}, 2, 2, hetgrid.StrategyExact)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := plan.Panel(4, 3, hetgrid.LU)
	if err != nil {
		log.Fatal(err)
	}
	d, err := layout.Distribute(nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	packed, stats, err := hetgrid.DistributedFactorLU(d, loaded, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored on 4 goroutine workstations: %d messages, %d bytes\n",
		stats.Messages, stats.Bytes)

	// 3. Save the factors and verify the round trip.
	l, u := hetgrid.SplitLU(packed)
	outPath := filepath.Join(dir, "factors_u.mtx")
	if err := writeFile(outPath, u); err != nil {
		log.Fatal(err)
	}
	reloaded, err := readFile(outPath)
	if err != nil {
		log.Fatal(err)
	}
	residual := matrix.Sub(matrix.Mul(l, reloaded), loaded).MaxAbs()
	fmt.Printf("reloaded U from %s: max |L·U − A| = %.2e\n", filepath.Base(outPath), residual)
}

func writeFile(path string, m *matrix.Dense) error {
	var buf bytes.Buffer
	if err := matrix.WriteMatrixMarket(&buf, m); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func readFile(path string) (*matrix.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return matrix.ReadMatrixMarket(f)
}
