// A multi-user parallel machine as a heterogeneous grid (§2.2): sixteen
// identical processors whose *effective* speeds differ because other users'
// jobs load some of them. The example re-balances as the load pattern
// changes and compares against the static uniform distribution that
// ScaLAPACK would use.
package main

import (
	"fmt"
	"log"

	"hetgrid"
)

// scenario is a snapshot of external load: load 0 means a dedicated
// processor; load 1 means one competing job (half speed), etc. The
// effective cycle-time of a processor is 1 + load.
type scenario struct {
	name  string
	loads []float64
}

func main() {
	log.SetFlags(0)

	scenarios := []scenario{
		{"night (dedicated)", make([]float64, 16)},
		{"morning (4 busy desktops)", []float64{
			1, 1, 0, 0,
			1, 1, 0, 0,
			0, 0, 0, 0,
			0, 0, 0, 0,
		}},
		{"afternoon (heavy mixed load)", []float64{
			3, 1, 0, 0,
			1, 2, 1, 0,
			0, 1, 4, 1,
			0, 0, 1, 2,
		}},
	}

	const nb = 32
	opts := hetgrid.SimOptions{Latency: 0.05, ByteTime: 1e-5, BlockBytes: 8 * 32 * 32}

	for _, sc := range scenarios {
		times := make([]float64, 16)
		for i, l := range sc.loads {
			times[i] = 1 + l
		}
		plan, err := hetgrid.Balance(times, 4, 4, hetgrid.StrategyAuto)
		if err != nil {
			log.Fatal(err)
		}
		layout, err := plan.BestPanel(16, 16, hetgrid.MatMul)
		if err != nil {
			log.Fatal(err)
		}
		panel, err := layout.Distribute(nb, nb)
		if err != nil {
			log.Fatal(err)
		}
		uniform, err := hetgrid.Uniform(4, 4, nb, nb)
		if err != nil {
			log.Fatal(err)
		}
		uniRes, err := hetgrid.Simulate(hetgrid.MatMul, uniform, plan, opts)
		if err != nil {
			log.Fatal(err)
		}
		panRes, err := hetgrid.Simulate(hetgrid.MatMul, panel, plan, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s  uniform %9.0f   rebalanced %9.0f   speedup %.2fx   utilization %.0f%%\n",
			sc.name, uniRes.Makespan, panRes.Makespan,
			uniRes.Makespan/panRes.Makespan, 100*plan.MeanWorkload())
	}
	fmt.Println("\nA static uniform distribution pays the slowest processor's price all day;")
	fmt.Println("re-planning with the measured loads keeps the machine near full speed.")
}
