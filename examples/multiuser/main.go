// A multi-user parallel machine as a heterogeneous grid (§2.2): identical
// processors whose *effective* speeds differ because other users' jobs load
// some of them. Part one replays the paper's planning story in the
// simulator: re-balancing the block layout as the load pattern changes
// beats the static uniform distribution ScaLAPACK would use. Part two runs
// it for real: tenants factor matrices on goroutine ranks while a noisy
// neighbor loads one rank mid-run (a deterministic compute slowdown), and
// online drift rebalancing — watch the busy-time gauges, checkpoint, replan,
// resume — is compared wall-clock against riding out the static plan. The
// result of every run stays bit-identical to the undisturbed factorization.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"hetgrid"
	"hetgrid/internal/matrix"
)

// scenario is a snapshot of external load: load 0 means a dedicated
// processor; load 1 means one competing job (half speed), etc. The
// effective cycle-time of a processor is 1 + load.
type scenario struct {
	name  string
	loads []float64
}

func simulatedScenarios() {
	scenarios := []scenario{
		{"night (dedicated)", make([]float64, 16)},
		{"morning (4 busy desktops)", []float64{
			1, 1, 0, 0,
			1, 1, 0, 0,
			0, 0, 0, 0,
			0, 0, 0, 0,
		}},
		{"afternoon (heavy mixed load)", []float64{
			3, 1, 0, 0,
			1, 2, 1, 0,
			0, 1, 4, 1,
			0, 0, 1, 2,
		}},
	}

	const nb = 32
	opts := hetgrid.SimOptions{Latency: 0.05, ByteTime: 1e-5, BlockBytes: 8 * 32 * 32}

	for _, sc := range scenarios {
		times := make([]float64, 16)
		for i, l := range sc.loads {
			times[i] = 1 + l
		}
		plan, err := hetgrid.Balance(times, 4, 4, hetgrid.StrategyAuto)
		if err != nil {
			log.Fatal(err)
		}
		layout, err := plan.BestPanel(16, 16, hetgrid.MatMul)
		if err != nil {
			log.Fatal(err)
		}
		panel, err := layout.Distribute(nb, nb)
		if err != nil {
			log.Fatal(err)
		}
		uniform, err := hetgrid.Uniform(4, 4, nb, nb)
		if err != nil {
			log.Fatal(err)
		}
		uniRes, err := hetgrid.Simulate(hetgrid.MatMul, uniform, plan, opts)
		if err != nil {
			log.Fatal(err)
		}
		panRes, err := hetgrid.Simulate(hetgrid.MatMul, panel, plan, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s  uniform %9.0f   rebalanced %9.0f   speedup %.2fx   utilization %.0f%%\n",
			sc.name, uniRes.Makespan, panRes.Makespan,
			uniRes.Makespan/panRes.Makespan, 100*plan.MeanWorkload())
	}
	fmt.Println("\nA static uniform distribution pays the slowest processor's price all day;")
	fmt.Println("re-planning with the measured loads keeps the machine near full speed.")
}

const (
	nb = 12 // block matrix side
	r  = 48 // element block size (matrix side nb*r)
)

// noisyNeighbor is the drifting load: rank 3 drops to 1/12 speed once the
// factorization is underway, and never recovers.
var noisyNeighbor = hetgrid.FaultOptions{
	Slowdowns: []hetgrid.SlowdownPoint{{Rank: 3, Step: 1, Factor: 12}},
}

// driftPolicy reacts within two steps of sustained drift; the near-loopback
// network model reflects blocks migrating inside one address space.
var driftPolicy = hetgrid.DriftPolicy{
	Window:        2,
	Patience:      1,
	Threshold:     0.5,
	Hysteresis:    1.05,
	MaxMigrations: 1,
	Net:           hetgrid.SimOptions{Latency: 1e-9, ByteTime: 1e-12},
}

// tenant is one user's factorization job in the shared machine.
type tenant struct {
	name   string
	a      *hetgrid.Matrix
	serial *hetgrid.Matrix
	d      hetgrid.Distribution

	makespan   time.Duration
	migrations int
	identical  bool
}

// run factors the tenant's matrix under the noisy neighbor, with or
// without online drift rebalancing, and records wall-clock makespan,
// migrations and bit-identity against the serial factorization.
func (tn *tenant) run(drift bool) {
	opts := []hetgrid.Option{hetgrid.WithFaults(noisyNeighbor)}
	if drift {
		opts = append(opts, hetgrid.WithDriftRebalance(driftPolicy))
	}
	start := time.Now()
	packed, stats, err := hetgrid.DistributedFactorLU(tn.d, tn.a, r, opts...)
	if err != nil {
		log.Fatalf("%s: %v", tn.name, err)
	}
	tn.makespan = time.Since(start)
	tn.identical = packed.Equal(tn.serial)
	tn.migrations = 0
	if stats.Drift != nil {
		tn.migrations = stats.Drift.Migrations
	}
}

func realTenants() {
	fmt.Printf("\nreal execution: tenants factor %d×%d matrices on a 2×2 grid;\n", nb*r, nb*r)
	fmt.Println("a noisy neighbor drops rank 3 to 1/12 speed at step 1")

	d, err := hetgrid.Uniform(2, 2, nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	newTenant := func(name string, seed int64) *tenant {
		a := matrix.RandomWellConditioned(nb*r, rand.New(rand.NewSource(seed)))
		serial, err := hetgrid.Factor(hetgrid.LU, d, a)
		if err != nil {
			log.Fatal(err)
		}
		return &tenant{name: name, a: a, serial: serial.Packed(), d: d}
	}

	// One tenant, static plan vs online drift rebalancing.
	tn := newTenant("tenant-a", 1)
	tn.run(false)
	static := tn.makespan
	fmt.Printf("\n%-28s %10v   migrations %d   bit-identical %v\n",
		"static plan (rides it out)", static.Round(time.Millisecond), tn.migrations, tn.identical)
	tn.run(true)
	fmt.Printf("%-28s %10v   migrations %d   bit-identical %v   speedup %.2fx\n",
		"drift rebalancing", tn.makespan.Round(time.Millisecond), tn.migrations, tn.identical,
		float64(static)/float64(tn.makespan))
	if !tn.identical {
		log.Fatal("a migrated run diverged from the serial factorization")
	}

	// Two tenants at once: each drift-rebalances its own run while sharing
	// the machine with the other.
	ta, tb := newTenant("tenant-a", 1), newTenant("tenant-b", 2)
	var wg sync.WaitGroup
	for _, tn := range []*tenant{ta, tb} {
		wg.Add(1)
		go func(tn *tenant) {
			defer wg.Done()
			tn.run(true)
		}(tn)
	}
	wg.Wait()
	fmt.Println("\ntwo concurrent tenants, both drift-rebalancing:")
	for _, tn := range []*tenant{ta, tb} {
		fmt.Printf("%-28s %10v   migrations %d   bit-identical %v\n",
			tn.name, tn.makespan.Round(time.Millisecond), tn.migrations, tn.identical)
		if !tn.identical {
			log.Fatal("a migrated run diverged from the serial factorization")
		}
	}
}

func main() {
	log.SetFlags(0)
	simulatedScenarios()
	realTenants()
}
