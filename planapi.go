package hetgrid

import (
	"fmt"

	"hetgrid/internal/plan"
)

// PlanRequest is the canonical planning request of the internal/plan
// pipeline — the one vocabulary every planning surface speaks: Balance and
// BalanceArrangement (fixed shape), ChooseGrid (free shape), the survivor
// replanner, the CLIs, and the hetgridd service's POST /v1/plan body.
type PlanRequest = plan.Request

// CanonicalPlan is the serializable plan the pipeline produces:
// arrangement, shares, panel ordering, predicted Obj1 and provenance. Its
// JSON form is stable (declaration-order fields, shortest-round-trip
// floats), so it can be cached, diffed and shipped over the wire.
type CanonicalPlan = plan.Plan

// PanelSpec asks the pipeline to realize a plan's shares as a concrete
// block panel (see PlanRequest.Panel).
type PanelSpec = plan.PanelSpec

// PlanStrategy and PlanKernel are the pipeline's string-valued enums; use
// CanonicalStrategy/CanonicalKernel to convert this package's constants.
type PlanStrategy = plan.Strategy
type PlanKernel = plan.Kernel

// The pipeline's strategy vocabulary, re-exported for request literals.
const (
	PlanAuto      PlanStrategy = plan.StrategyAuto
	PlanHeuristic PlanStrategy = plan.StrategyHeuristic
	PlanExact     PlanStrategy = plan.StrategyExact
)

// CanonicalStrategy maps a Strategy constant to the pipeline's string
// vocabulary ("auto", "heuristic", "exact").
func CanonicalStrategy(s Strategy) (PlanStrategy, error) { return s.canonical() }

// CanonicalKernel maps a Kernel constant to the pipeline's string
// vocabulary ("matmul", "lu", "qr", "cholesky").
func CanonicalKernel(k Kernel) (PlanKernel, error) {
	switch k {
	case MatMul, LU, QR, Cholesky:
		return plan.Kernel(k.String()), nil
	default:
		return "", fmt.Errorf("hetgrid: unknown kernel %v", k)
	}
}

// SolvePlan runs the canonical planning pipeline on req and returns both
// the solved Plan (ready for Panel/BestPanel/Simulate) and its canonical
// serializable form. It is the one entry point the CLIs and services build
// on; Balance, BalanceArrangement and ChooseGrid are conveniences over the
// same pipeline. Options that apply: WithWorkers (exact search
// parallelism), WithMetrics (exact solver counters).
func SolvePlan(req PlanRequest, opts ...Option) (*Plan, *CanonicalPlan, error) {
	bo := applyOptions(opts).balance
	if req.Workers == 0 {
		req.Workers = bo.Workers
	}
	res, err := plan.Solve(req)
	if err != nil {
		return nil, nil, err
	}
	publishExactStats(bo.Metrics, res.ExactStats)
	return planFromResult(res), res.Plan, nil
}
