package hetgrid

import (
	"math/rand"
	"testing"

	"hetgrid/internal/matrix"
)

func TestDistributedMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	plan, err := Balance([]float64{1, 2, 3, 5}, 2, 2, StrategyExact)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := plan.Panel(4, 3, MatMul)
	if err != nil {
		t.Fatal(err)
	}
	const nb, r = 8, 4
	d, err := layout.Distribute(nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(nb*r, nb*r, rng)
	b := matrix.Random(nb*r, nb*r, rng)
	c, stats, err := DistributedMultiply(d, a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EqualApprox(matrix.Mul(a, b), 1e-10) {
		t.Fatal("distributed product differs from serial")
	}
	if stats.Messages == 0 || stats.Bytes == 0 {
		t.Fatalf("no traffic recorded: %+v", stats)
	}
}

func TestDistributedFactorLU(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const r = 3
	a := matrix.RandomWellConditioned(18, rng)
	packed, stats, err := DistributedFactorLU(d, a, r)
	if err != nil {
		t.Fatal(err)
	}
	l, u := SplitLU(packed)
	if !matrix.Mul(l, u).EqualApprox(a, 1e-8) {
		t.Fatal("distributed LU: L·U != A")
	}
	if stats.Messages == 0 {
		t.Fatal("no traffic recorded")
	}
	// The distributed result matches the serial replay bit patterns.
	rep, _, err := FactorLU(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if !packed.EqualApprox(rep, 1e-12) {
		t.Fatal("distributed factors differ from serial replay")
	}
}

func TestDistributedMultiplyBadBlockSize(t *testing.T) {
	d, err := Uniform(2, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.New(10, 10) // 4 blocks of 3 ≠ 10
	if _, _, err := DistributedMultiply(d, a, a, 3); err == nil {
		t.Fatal("mismatched block size accepted")
	}
}
