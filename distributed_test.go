package hetgrid

import (
	"math/rand"
	"testing"

	"hetgrid/internal/matrix"
)

func TestDistributedMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	plan, err := Balance([]float64{1, 2, 3, 5}, 2, 2, StrategyExact)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := plan.Panel(4, 3, MatMul)
	if err != nil {
		t.Fatal(err)
	}
	const nb, r = 8, 4
	d, err := layout.Distribute(nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(nb*r, nb*r, rng)
	b := matrix.Random(nb*r, nb*r, rng)
	c, stats, err := DistributedMultiply(d, a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EqualApprox(matrix.Mul(a, b), 1e-10) {
		t.Fatal("distributed product differs from serial")
	}
	if stats.Messages == 0 || stats.Bytes == 0 {
		t.Fatalf("no traffic recorded: %+v", stats)
	}
}

func TestDistributedFactorLU(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const r = 3
	a := matrix.RandomWellConditioned(18, rng)
	packed, stats, err := DistributedFactorLU(d, a, r)
	if err != nil {
		t.Fatal(err)
	}
	l, u := SplitLU(packed)
	if !matrix.Mul(l, u).EqualApprox(a, 1e-8) {
		t.Fatal("distributed LU: L·U != A")
	}
	if stats.Messages == 0 {
		t.Fatal("no traffic recorded")
	}
	// The distributed result matches the serial replay bit patterns.
	rep, _, err := FactorLU(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if !packed.EqualApprox(rep, 1e-12) {
		t.Fatal("distributed factors differ from serial replay")
	}
}

func TestDistributedFactorQR(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	d, err := Uniform(2, 2, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	const nb, r = 5, 3
	a := matrix.Random(nb*r, nb*r, rng)
	f, stats, err := DistributedFactorQR(d, a, r)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages == 0 {
		t.Fatal("no traffic recorded")
	}
	if !matrix.Mul(f.Q(r), f.R()).EqualApprox(a, 1e-9) {
		t.Fatal("distributed QR: Q·R != A")
	}
	// Real execution and serial replay agree bit for bit, including the
	// ownership-attributed operation counts.
	rep, err := FactorQR(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if !f.R().Equal(rep.R()) {
		t.Fatal("distributed R differs from replay")
	}
	gotOps, wantOps := f.Ops(), rep.Ops()
	for i := range wantOps {
		if gotOps[i] != wantOps[i] {
			t.Fatalf("ops[%d] = %d, replay %d", i, gotOps[i], wantOps[i])
		}
	}
}

func TestDistributedExecStatsBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	d, err := Uniform(2, 3, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const r = 2
	a := matrix.RandomWellConditioned(12, rng)
	packed, stats, err := DistributedFactorLUOpts(d, a, r, ExecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if packed == nil {
		t.Fatal("no result")
	}
	if len(stats.Ranks) != 6 || len(stats.Pairs) != 6 {
		t.Fatalf("expected 6-rank breakdowns, got %d/%d", len(stats.Ranks), len(stats.Pairs))
	}
	var msgs, bytes, pairMsgs int
	for _, rs := range stats.Ranks {
		msgs += rs.MsgsSent
		bytes += rs.BytesSent
	}
	for _, row := range stats.Pairs {
		for _, ps := range row {
			pairMsgs += ps.Messages
		}
	}
	if msgs != stats.Messages || bytes != stats.Bytes || pairMsgs != stats.Messages {
		t.Fatalf("per-rank sums (%d msgs, %d bytes; pairs %d) != totals (%d, %d)",
			msgs, bytes, pairMsgs, stats.Messages, stats.Bytes)
	}
	if stats.Trace == nil || len(stats.Trace.Ops) == 0 {
		t.Fatal("trace requested but empty")
	}
	// Without the option the trace stays nil (no recording overhead).
	_, plain, err := DistributedFactorLU(d, a, r)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("trace recorded without being requested")
	}
}

func TestDistributedBroadcastKindsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const r = 2
	a := matrix.RandomWellConditioned(12, rng)
	base, _, err := DistributedFactorLU(d, a, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, bk := range []BroadcastKind{FlatBroadcast, RingBroadcast, PipelinedRingBroadcast, TreeBroadcast} {
		got, _, err := DistributedFactorLUOpts(d, a, r, ExecOptions{Broadcast: bk})
		if err != nil {
			t.Fatalf("%v: %v", bk, err)
		}
		if !got.Equal(base) {
			t.Fatalf("%v: factors differ from the flat broadcast", bk)
		}
	}
	if _, _, err := DistributedFactorLUOpts(d, a, r, ExecOptions{Broadcast: BroadcastKind(99)}); err == nil {
		t.Fatal("invalid broadcast kind accepted")
	}
}

func TestSimulateBroadcastSelection(t *testing.T) {
	plan, err := Balance([]float64{1, 2, 3, 5}, 2, 2, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Uniform(2, 2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Simulate(LU, d, plan, SimOptions{Latency: 1e-4, ByteTime: 1e-8, BlockBytes: 8 * 32 * 32})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Simulate(LU, d, plan, SimOptions{Latency: 1e-4, ByteTime: 1e-8, BlockBytes: 8 * 32 * 32, Broadcast: RingBroadcast})
	if err != nil {
		t.Fatal(err)
	}
	// BroadcastAuto preserves the simulator's historical default, the ring
	// broadcast.
	if auto.Makespan != ring.Makespan {
		t.Fatalf("auto makespan %v differs from ring %v", auto.Makespan, ring.Makespan)
	}
	// On a 2×2 grid star, ring and tree schedules coincide (every broadcast
	// has at most one forwarding hop), but segment pipelining still changes
	// the message structure and therefore the makespan.
	pipe, err := Simulate(LU, d, plan, SimOptions{Latency: 1e-4, ByteTime: 1e-8, BlockBytes: 8 * 32 * 32, Broadcast: PipelinedRingBroadcast})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Makespan == ring.Makespan {
		t.Fatal("broadcast kind had no effect on the simulated schedule")
	}
}

func TestDistributedMultiplyBadBlockSize(t *testing.T) {
	d, err := Uniform(2, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.New(10, 10) // 4 blocks of 3 ≠ 10
	if _, _, err := DistributedMultiply(d, a, a, 3); err == nil {
		t.Fatal("mismatched block size accepted")
	}
}

func TestDistributedParallelismBitIdentical(t *testing.T) {
	// ExecOptions.Parallelism only changes scheduling, never arithmetic:
	// every worker count must reproduce the serial execution bit for bit.
	rng := rand.New(rand.NewSource(404))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const nb, r = 6, 4
	a := matrix.Random(nb*r, nb*r, rng)
	b := matrix.Random(nb*r, nb*r, rng)
	serial, _, err := DistributedMultiplyOpts(d, a, b, r, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spd := matrix.RandomSPD(nb*r, rng)
	serialChol, _, err := DistributedFactorCholeskyOpts(d, spd, r, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, _, err := DistributedMultiplyOpts(d, a, b, r, ExecOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(serial) {
			t.Fatalf("parallelism=%d: product not bit-identical to serial", workers)
		}
		gotChol, _, err := DistributedFactorCholeskyOpts(d, spd, r, ExecOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !gotChol.Equal(serialChol) {
			t.Fatalf("parallelism=%d: Cholesky not bit-identical to serial", workers)
		}
	}
}
