package hetgrid

import (
	"math/rand"
	"strings"
	"testing"

	"hetgrid/internal/matrix"
)

// TestParseRoundTrips: every enum value round-trips through
// String()/Parse*, the documented aliases resolve, parsing is
// case-insensitive, and junk is rejected.
func TestParseRoundTrips(t *testing.T) {
	for _, b := range []BroadcastKind{BroadcastAuto, FlatBroadcast, RingBroadcast, PipelinedRingBroadcast, TreeBroadcast} {
		got, err := ParseBroadcast(b.String())
		if err != nil || got != b {
			t.Fatalf("broadcast %v round-trips to (%v, %v)", b, got, err)
		}
	}
	for _, k := range []Kernel{MatMul, LU, QR, Cholesky} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("kernel %v round-trips to (%v, %v)", k, got, err)
		}
	}
	for _, s := range []Strategy{StrategyAuto, StrategyHeuristic, StrategyExact} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("strategy %v round-trips to (%v, %v)", s, got, err)
		}
	}
	aliases := []struct {
		in   string
		want BroadcastKind
	}{{"star", FlatBroadcast}, {"segring", PipelinedRingBroadcast}, {"TREE", TreeBroadcast}}
	for _, a := range aliases {
		if got, err := ParseBroadcast(a.in); err != nil || got != a.want {
			t.Fatalf("ParseBroadcast(%q) = (%v, %v), want %v", a.in, got, err, a.want)
		}
	}
	if got, err := ParseKernel("MM"); err != nil || got != MatMul {
		t.Fatalf("ParseKernel(MM) = (%v, %v)", got, err)
	}
	if got, err := ParseKernel("chol"); err != nil || got != Cholesky {
		t.Fatalf("ParseKernel(chol) = (%v, %v)", got, err)
	}
	for _, bad := range []string{"", "bogus", "flat "} {
		if _, err := ParseBroadcast(bad); err == nil {
			t.Fatalf("ParseBroadcast(%q) accepted", bad)
		}
	}
	if _, err := ParseKernel("svd"); err == nil {
		t.Fatal("ParseKernel(svd) accepted")
	}
	if _, err := ParseStrategy("brute"); err == nil {
		t.Fatal("ParseStrategy(brute) accepted")
	}
}

// TestOptionsEquivalence: the variadic functional-option entry points and
// the deprecated *Opts forms configure the same execution — bit-identical
// results and identical traffic.
func TestOptionsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const r = 3
	a, b := matrix.Random(18, 18, rng), matrix.Random(18, 18, rng)

	newAPI, newStats, err := DistributedMultiply(d, a, b, r,
		WithBroadcast(TreeBroadcast), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	oldAPI, oldStats, err := DistributedMultiplyOpts(d, a, b, r,
		ExecOptions{Broadcast: TreeBroadcast, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !newAPI.Equal(oldAPI) {
		t.Fatal("functional options and ExecOptions produce different products")
	}
	if newStats.Messages != oldStats.Messages || newStats.Bytes != oldStats.Bytes {
		t.Fatalf("traffic differs: %d/%d msgs, %d/%d bytes",
			newStats.Messages, oldStats.Messages, newStats.Bytes, oldStats.Bytes)
	}

	lu := matrix.RandomWellConditioned(18, rng)
	newLU, _, err := DistributedFactorLU(d, lu, r, WithBroadcast(RingBroadcast))
	if err != nil {
		t.Fatal(err)
	}
	oldLU, _, err := DistributedFactorLUOpts(d, lu, r, ExecOptions{Broadcast: RingBroadcast})
	if err != nil {
		t.Fatal(err)
	}
	if !newLU.Equal(oldLU) {
		t.Fatal("functional options and ExecOptions produce different LU factors")
	}

	times := []float64{1, 2, 3, 5}
	planNew, err := Balance(times, 2, 2, StrategyExact, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	planOld, err := BalanceOpts(times, 2, 2, StrategyExact, BalanceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if planNew.Objective() != planOld.Objective() {
		t.Fatalf("Balance objectives differ: %v vs %v", planNew.Objective(), planOld.Objective())
	}
}

// TestFactorizationUnifiesKernels: Factor returns the one result type for
// all three factorizations, matching what the deprecated per-kernel
// entry points return.
func TestFactorizationUnifiesKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	d, err := Uniform(2, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}

	a := matrix.RandomWellConditioned(16, rng)
	f, err := Factor(LU, d, a)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kernel() != LU {
		t.Fatalf("kernel %v", f.Kernel())
	}
	oldPacked, oldOps, err := FactorLU(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Packed().Equal(oldPacked) {
		t.Fatal("Factor(LU) and FactorLU disagree")
	}
	ops := f.Ops()
	if len(ops) != len(oldOps) {
		t.Fatalf("ops %v vs %v", ops, oldOps)
	}
	for i := range ops {
		if ops[i] != oldOps[i] {
			t.Fatalf("ops %v vs %v", ops, oldOps)
		}
	}
	// Ops returns a copy: mutating it must not touch the result.
	if len(ops) > 0 {
		ops[0]++
		if f.Ops()[0] == ops[0] {
			t.Fatal("Ops exposed internal state")
		}
	}
	l, u := f.LU()
	if l == nil || u == nil {
		t.Fatal("LU unpack failed")
	}

	spd := matrix.RandomSPD(16, rng)
	fc, err := Factor(Cholesky, d, spd)
	if err != nil {
		t.Fatal(err)
	}
	oldL, _, err := FactorCholesky(d, spd)
	if err != nil {
		t.Fatal(err)
	}
	if !fc.L().Equal(oldL) {
		t.Fatal("Factor(Cholesky) and FactorCholesky disagree")
	}

	q := matrix.Random(16, 16, rng)
	fq, err := Factor(QR, d, q)
	if err != nil {
		t.Fatal(err)
	}
	oldQR, err := FactorQR(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if !fq.R().Equal(oldQR.R()) {
		t.Fatal("Factor(QR) and FactorQR disagree on R")
	}
	if !fq.Q(4).Equal(oldQR.Q(4)) {
		t.Fatal("Factor(QR) and FactorQR disagree on Q")
	}

	if _, err := Factor(MatMul, d, a); err == nil {
		t.Fatal("Factor(MatMul) accepted; matmul is not a factorization")
	}
}

// TestDistributedFactorMatchesSerial: the real distributed execution of
// each factorization is bit-identical to the serial replay behind Factor.
func TestDistributedFactorMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	d, err := Uniform(2, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const r = 4
	cases := []struct {
		kernel Kernel
		input  *Matrix
	}{
		{LU, matrix.RandomWellConditioned(16, rng)},
		{Cholesky, matrix.RandomSPD(16, rng)},
		{QR, matrix.Random(16, 16, rng)},
	}
	for _, tc := range cases {
		t.Run(tc.kernel.String(), func(t *testing.T) {
			serial, err := Factor(tc.kernel, d, tc.input)
			if err != nil {
				t.Fatal(err)
			}
			dist, _, err := DistributedFactor(tc.kernel, d, tc.input, r)
			if err != nil {
				t.Fatal(err)
			}
			if !dist.Packed().Equal(serial.Packed()) {
				t.Fatalf("distributed %v differs from the serial replay", tc.kernel)
			}
		})
	}
	if _, _, err := DistributedFactor(MatMul, d, cases[0].input, r); err == nil {
		t.Fatal("DistributedFactor(MatMul) accepted")
	}
}

// TestFactorizationAccessorMismatchPanics: calling a kernel-specific
// accessor on the wrong kernel's result is a programming error and panics
// with a message naming both kernels.
func TestFactorizationAccessorMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	d, err := Uniform(2, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factor(LU, d, matrix.RandomWellConditioned(16, rng))
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatalf("%s on an LU result did not panic", name)
			}
			if msg, ok := p.(string); !ok || !strings.Contains(msg, "lu") {
				t.Fatalf("%s panic %v does not name the kernel", name, p)
			}
		}()
		fn()
	}
	mustPanic("L", func() { f.L() })
	mustPanic("R", func() { f.R() })
	mustPanic("Q", func() { f.Q(4) })
}
