package hetgrid_test

import (
	"fmt"

	"hetgrid"
)

// ExampleBalance shows the paper's running example: four processors of
// cycle-times 1, 2, 3 and 5 on a 2×2 grid.
func ExampleBalance() {
	plan, err := hetgrid.Balance([]float64{1, 2, 3, 5}, 2, 2, hetgrid.StrategyExact)
	if err != nil {
		panic(err)
	}
	fmt.Printf("objective: %.2f blocks per time unit\n", plan.Objective())
	fmt.Printf("mean workload: %.1f%%\n", 100*plan.MeanWorkload())
	fmt.Printf("row shares: %.2f %.2f\n", plan.RowShares()[0], plan.RowShares()[1])
	fmt.Printf("column shares: %.2f %.2f\n", plan.ColShares()[0], plan.ColShares()[1])
	// Output:
	// objective: 2.00 blocks per time unit
	// mean workload: 95.8%
	// row shares: 1.00 0.33
	// column shares: 1.00 0.50
}

// ExampleBalance_rank1 shows the perfectly balanceable grid of the paper's
// Figure 1.
func ExampleBalance_rank1() {
	plan, err := hetgrid.Balance([]float64{1, 2, 3, 6}, 2, 2, hetgrid.StrategyAuto)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean workload: %.0f%%\n", 100*plan.MeanWorkload())
	// Output:
	// mean workload: 100%
}

// ExamplePlan_Panel builds the paper's Figure-4 LU panel with its ABAABA
// column interleaving.
func ExamplePlan_Panel() {
	plan, err := hetgrid.Balance([]float64{1, 2, 3, 5}, 2, 2, hetgrid.StrategyExact)
	if err != nil {
		panic(err)
	}
	layout, err := plan.Panel(8, 6, hetgrid.LU)
	if err != nil {
		panic(err)
	}
	fmt.Println("rows per grid row:", layout.RowCounts())
	fmt.Println("columns per grid column:", layout.ColCounts())
	order := layout.ColOrder()
	letters := make([]byte, len(order))
	for i, o := range order {
		letters[i] = byte('A' + o)
	}
	fmt.Println("column order:", string(letters))
	// Output:
	// rows per grid row: [6 2]
	// columns per grid column: [4 2]
	// column order: ABAABA
}

// ExampleSimulate compares the uniform block-cyclic baseline against the
// heterogeneous panel on a simulated network of workstations.
func ExampleSimulate() {
	plan, err := hetgrid.Balance([]float64{1, 2, 3, 5}, 2, 2, hetgrid.StrategyExact)
	if err != nil {
		panic(err)
	}
	layout, err := plan.BestPanel(12, 12, hetgrid.MatMul)
	if err != nil {
		panic(err)
	}
	const nb = 24
	panel, err := layout.Distribute(nb, nb)
	if err != nil {
		panic(err)
	}
	uniform, err := hetgrid.Uniform(2, 2, nb, nb)
	if err != nil {
		panic(err)
	}
	uniRes, err := hetgrid.Simulate(hetgrid.MatMul, uniform, plan, hetgrid.SimOptions{})
	if err != nil {
		panic(err)
	}
	panRes, err := hetgrid.Simulate(hetgrid.MatMul, panel, plan, hetgrid.SimOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("speedup over uniform: %.1fx\n", uniRes.Makespan/panRes.Makespan)
	// Output:
	// speedup over uniform: 2.5x
}

// ExampleNeighbors shows the grid-pattern analysis separating the paper's
// panel distribution from Kalinov–Lastovetsky's.
func ExampleNeighbors() {
	plan, err := hetgrid.Balance([]float64{1, 2, 3, 5}, 2, 2, hetgrid.StrategyExact)
	if err != nil {
		panic(err)
	}
	layout, err := plan.Panel(8, 6, hetgrid.MatMul)
	if err != nil {
		panic(err)
	}
	panel, err := layout.Distribute(28, 28)
	if err != nil {
		panic(err)
	}
	kl, err := hetgrid.KalinovLastovetsky(plan, 28, 28)
	if err != nil {
		panic(err)
	}
	fmt.Println("panel keeps grid pattern:", hetgrid.Neighbors(panel).GridPattern)
	fmt.Println("KL keeps grid pattern:", hetgrid.Neighbors(kl).GridPattern)
	fmt.Println("KL max west neighbours:", hetgrid.Neighbors(kl).MaxWest)
	// Output:
	// panel keeps grid pattern: true
	// KL keeps grid pattern: false
	// KL max west neighbours: 2
}

// ExampleCycleTimes turns per-host calibration measurements into the
// cycle-times Balance consumes.
func ExampleCycleTimes() {
	measured := []float64{1.2e-6, 2.4e-6, 6.0e-6} // seconds per block update
	times, err := hetgrid.CycleTimes(measured)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f %.0f %.0f\n", times[0], times[1], times[2])
	// Output:
	// 1 2 5
}
