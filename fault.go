package hetgrid

import (
	"fmt"
	"time"

	"hetgrid/internal/adapt"
	"hetgrid/internal/engine"
)

// CrashPoint schedules the death of one rank at the start of a kernel
// step. Silent crashes die without aborting the world, exercising the
// failure detector; the default fail-stop crash aborts immediately.
type CrashPoint = engine.CrashPoint

// SlowdownPoint schedules a compute-time multiplier on one rank from the
// start of a kernel step onward — the deterministic model of a noisy
// neighbor. The rank's compute sections take Factor× their natural time
// (visible to the busy-time gauges and the drift detector) while every
// numerical result stays untouched. A later-scheduled point for the same
// rank replaces the factor; Factor 1 schedules a recovery to full speed.
// Like crashes, ranks are numbered within the world the point fires in.
type SlowdownPoint = engine.SlowdownPoint

// FaultOptions enables deterministic, seed-driven fault injection on a
// distributed execution, and optionally the recovery path that replans the
// surviving processors and resumes from the last checkpoint.
//
// Determinism contract: whether a given message is dropped or delayed is a
// pure function of (Seed, sender, receiver, tag, per-channel sequence
// number), and crashes fire when their rank enters the scheduled kernel
// step — so the injected fault set does not depend on goroutine
// scheduling. Faults never perturb the arithmetic: a run that completes
// (directly or through recovery) returns results bit-identical to the
// fault-free execution.
type FaultOptions struct {
	// Seed drives every drop and delay decision.
	Seed int64
	// DropProb is the per-message probability that a message's first
	// delivery is swallowed; the receiver's timeout then requests a
	// retransmission. Drops are survivable because RecvTimeout is always
	// set when faults are enabled.
	DropProb float64
	// DelayProb and Delay defer a message's delivery. Keep Delay well under
	// RecvTimeout or the failure detector will misread lateness as death.
	DelayProb float64
	Delay     time.Duration
	// Crashes schedules rank deaths at kernel steps.
	Crashes []CrashPoint
	// Slowdowns schedules compute-time multipliers at kernel steps — the
	// injected load drift WithDriftRebalance reacts to. Slowdowns never
	// change results, only measured busy time.
	Slowdowns []SlowdownPoint
	// RecvTimeout bounds every receive; expiry triggers retransmission
	// requests with doubled (bounded) backoff, and exhausting MaxRetries
	// declares the peer dead. 0 selects the 100ms default.
	RecvTimeout time.Duration
	// MaxRetries is the number of retransmission attempts before a peer is
	// declared dead; 0 selects the default (3).
	MaxRetries int
	// Recover enables the recovery path: on a rank failure the surviving
	// processors are replanned (see PlanSurvivors) and the kernel resumes
	// from the last checkpoint, still returning bit-identical results.
	// Without it a rank failure surfaces as the *RankFailure error.
	Recover bool
	// CheckpointEvery takes a checkpoint (a gather of the working matrix to
	// rank 0) every so many kernel steps; 0 selects every step. Larger
	// values checkpoint less traffic but replay more steps after a failure.
	CheckpointEvery int
	// MaxRecoveries bounds the recovery attempts; 0 selects the default (3).
	MaxRecoveries int
	// Times optionally gives the per-rank cycle-times (flat rank order) the
	// replanner should balance the survivors by; nil assumes equal speeds.
	Times []float64
}

// RankFailure is the error a distributed execution returns when a rank
// dies and recovery is disabled (or exhausted): either the scheduled crash
// itself, or — for silent crashes — the peer's failure detector verdict.
type RankFailure = engine.RankFailure

const (
	defaultRecvTimeout   = 100 * time.Millisecond
	defaultMaxRecoveries = 3
)

func (f *FaultOptions) recvTimeout() time.Duration {
	if f.RecvTimeout > 0 {
		return f.RecvTimeout
	}
	return defaultRecvTimeout
}

func (f *FaultOptions) checkpointEvery() int {
	if f.CheckpointEvery > 0 {
		return f.CheckpointEvery
	}
	return 1
}

func (f *FaultOptions) maxRecoveries() int {
	if f.MaxRecoveries > 0 {
		return f.MaxRecoveries
	}
	return defaultMaxRecoveries
}

// FaultStats reports what the fault layer did during a distributed
// execution. The surrounding ExecStats' traffic counters cover only the
// final (successful) attempt; FaultStats aggregates across all attempts.
type FaultStats struct {
	// Attempts is the number of worlds spawned (1 plus Recoveries).
	Attempts int
	// Recoveries is how many rank failures were recovered from.
	Recoveries int
	// Crashes is how many scheduled crash points fired.
	Crashes int
	// Slowdowns is how many scheduled slowdown points activated.
	Slowdowns int
	// Dropped, Delayed and Retransmitted count the injected message faults
	// and the retransmissions that repaired the drops.
	Dropped, Delayed, Retransmitted int
	// Timeouts and Retries count receive-deadline expiries and the
	// retransmission requests they triggered.
	Timeouts, Retries int
	// Checkpoints is how many checkpoints were committed at rank 0.
	Checkpoints int
	// ResumedSteps is the total number of kernel steps skipped by resuming
	// from checkpoints instead of restarting from scratch.
	ResumedSteps int
}

// PlanSurvivors replans a kernel's block distribution onto the processors
// that outlived a rank failure: it picks a fresh grid shape for the
// survivors' cycle-times (subset grids allowed, so any survivor count
// works), balances the shares, and builds a distribution of the unchanged
// nbr×nbc block matrix under the kernel's panel orderings. The recovery
// path uses it internally; it is exported so applications driving their
// own worlds can recover the same way.
func PlanSurvivors(times []float64, nbr, nbc int, k Kernel) (Distribution, *GridChoice, error) {
	rowOrd, colOrd, err := orderings(k)
	if err != nil {
		return nil, nil, err
	}
	plan, err := adapt.ReplanSurvivors(times, nbr, nbc, rowOrd, colOrd)
	if err != nil {
		return nil, nil, err
	}
	return plan.Dist, &GridChoice{
		P:          plan.P,
		Q:          plan.Q,
		Selected:   plan.Selected,
		Candidates: plan.Shape.Candidates,
	}, nil
}

// survivorTimes drops the dead rank from the per-rank cycle-times (equal
// speeds when the caller supplied none).
func survivorTimes(times []float64, n, dead int) ([]float64, error) {
	if dead < 0 || dead >= n {
		return nil, fmt.Errorf("hetgrid: dead rank %d outside world of %d", dead, n)
	}
	out := make([]float64, 0, n-1)
	for r := 0; r < n; r++ {
		if r == dead {
			continue
		}
		if times != nil {
			out = append(out, times[r])
		} else {
			out = append(out, 1)
		}
	}
	return out, nil
}
