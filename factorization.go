package hetgrid

import (
	"fmt"

	"hetgrid/internal/kernels"
)

// Factorization is the uniform result type of the three factorization
// kernels — LU, Cholesky and QR used to return three different shapes
// (bare packed matrix plus ops, lower factor plus ops, and a QR wrapper);
// Factor and DistributedFactor now return this one type for all of them.
// Kernel-specific accessors (LU, L, R, Q) panic when called on the wrong
// kernel's result, since that is a programming error, not a data error.
type Factorization struct {
	kernel Kernel
	packed *Matrix
	ops    []int
	qr     *kernels.QRReplay // non-nil only for QR
}

// Kernel reports which factorization produced this result.
func (f *Factorization) Kernel() Kernel { return f.kernel }

// Packed returns the raw factored matrix: the packed L\U factors for LU,
// the lower factor for Cholesky, the packed Householder form for QR.
func (f *Factorization) Packed() *Matrix { return f.packed }

// Ops returns the per-processor block-operation counts (nil when the
// execution path does not attribute operations, as in distributed LU and
// Cholesky runs).
func (f *Factorization) Ops() []int {
	if f.ops == nil {
		return nil
	}
	return append([]int(nil), f.ops...)
}

// require panics unless the factorization came from kernel k.
func (f *Factorization) require(k Kernel, method string) {
	if f.kernel != k {
		panic(fmt.Sprintf("hetgrid: Factorization.%s on a %v result (want %v)", method, f.kernel, k))
	}
}

// LU unpacks the L and U factors. Panics unless Kernel() == LU.
func (f *Factorization) LU() (l, u *Matrix) {
	f.require(LU, "LU")
	return kernels.ExtractLU(f.packed)
}

// L returns the lower Cholesky factor. Panics unless Kernel() == Cholesky.
func (f *Factorization) L() *Matrix {
	f.require(Cholesky, "L")
	return f.packed
}

// R returns QR's upper triangular factor. Panics unless Kernel() == QR.
func (f *Factorization) R() *Matrix {
	f.require(QR, "R")
	return f.qr.R()
}

// Q reconstructs QR's orthogonal factor (O(n³); for verification).
// blockSize is the element block size r used when distributing. Panics
// unless Kernel() == QR.
func (f *Factorization) Q(blockSize int) *Matrix {
	f.require(QR, "Q")
	return f.qr.Q(blockSize)
}

// Factor executes the factorization kernel numerically under d with the
// serial replay (block ownership respected, no concurrency) and returns
// the uniform result type. Supported kernels: LU, Cholesky, QR. Behavior
// is configured with functional options; WithNumerics selects the
// floating-point contract (Strict stays the default).
func Factor(k Kernel, d Distribution, a *Matrix, opts ...Option) (*Factorization, error) {
	mode := applyOptions(opts).exec.Numerics
	switch k {
	case LU:
		rep, err := kernels.ReplayLUNumerics(d, a, mode)
		if err != nil {
			return nil, err
		}
		return &Factorization{kernel: LU, packed: rep.C, ops: rep.Ops}, nil
	case Cholesky:
		rep, err := kernels.ReplayCholeskyNumerics(d, a, mode)
		if err != nil {
			return nil, err
		}
		return &Factorization{kernel: Cholesky, packed: rep.C, ops: rep.Ops}, nil
	case QR:
		rep, err := kernels.ReplayQRNumerics(d, a, mode)
		if err != nil {
			return nil, err
		}
		return &Factorization{kernel: QR, packed: rep.C, ops: rep.Ops, qr: rep}, nil
	default:
		return nil, fmt.Errorf("hetgrid: %v is not a factorization kernel (want lu, cholesky or qr)", k)
	}
}

// DistributedFactor executes the factorization kernel for real — one
// goroutine per grid processor, all data moving through messages — and
// returns the uniform result type, bit-identical to Factor's. Behavior is
// configured with functional options (WithBroadcast, WithTrace,
// WithParallelism, WithFaults). Supported kernels: LU, Cholesky, QR.
func DistributedFactor(k Kernel, d Distribution, a *Matrix, blockSize int, opts ...Option) (*Factorization, *ExecStats, error) {
	switch k {
	case LU, Cholesky, QR:
	default:
		return nil, nil, fmt.Errorf("hetgrid: %v is not a factorization kernel (want lu, cholesky or qr)", k)
	}
	packed, taus, stats, err := runDistributed(d, k, blockSize, []*Matrix{a}, applyOptions(opts).exec)
	if err != nil {
		return nil, nil, err
	}
	f := &Factorization{kernel: k, packed: packed}
	if k == QR {
		f.ops = qrOpCounts(d)
		f.qr = &kernels.QRReplay{
			Replay: kernels.Replay{C: packed, Ops: f.ops},
			Taus:   taus,
		}
	}
	return f, stats, nil
}
