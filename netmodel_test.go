package hetgrid

import (
	"math"
	"testing"
)

// TestFitAlphaBetaRecoversExactLine: samples generated from a known α–β
// line come back exactly (up to float round-off), with r² = 1.
func TestFitAlphaBetaRecoversExactLine(t *testing.T) {
	const alpha, beta = 25e-6, 1.25e-9 // 25µs latency, 800 MB/s
	var samples []CommSample
	for b := 8; b <= 1<<18; b *= 4 {
		samples = append(samples, CommSample{Bytes: b, Seconds: alpha + beta*float64(b)})
	}
	a, bt, r2, err := FitAlphaBeta(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-alpha) > 1e-12 || math.Abs(bt-beta) > 1e-15 {
		t.Fatalf("fit (%g, %g), want (%g, %g)", a, bt, alpha, beta)
	}
	if r2 < 1-1e-9 {
		t.Fatalf("r² = %v for a perfect line", r2)
	}
}

// TestFitAlphaBetaClampsNegativeIntercept: noisy data can regress to a
// negative latency; the fit must clamp it to zero rather than hand the
// simulator an invalid config.
func TestFitAlphaBetaClampsNegativeIntercept(t *testing.T) {
	samples := []CommSample{
		{Bytes: 100, Seconds: 0.5e-6},
		{Bytes: 200, Seconds: 2e-6},
	}
	a, b, _, err := FitAlphaBeta(samples)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Fatalf("negative intercept not clamped: α = %v", a)
	}
	if b <= 0 {
		t.Fatalf("slope lost in the clamp: β = %v", b)
	}
}

// TestFitAlphaBetaRejectsDegenerateInput: fewer than two samples, or two
// samples at the same size, cannot pin down a line.
func TestFitAlphaBetaRejectsDegenerateInput(t *testing.T) {
	if _, _, _, err := FitAlphaBeta(nil); err == nil {
		t.Fatal("empty sample set accepted")
	}
	if _, _, _, err := FitAlphaBeta([]CommSample{{Bytes: 64, Seconds: 1e-6}}); err == nil {
		t.Fatal("single sample accepted")
	}
	same := []CommSample{{Bytes: 64, Seconds: 1e-6}, {Bytes: 64, Seconds: 2e-6}}
	if _, _, _, err := FitAlphaBeta(same); err == nil {
		t.Fatal("two samples at one size accepted")
	}
}

// TestPredictBroadcastMatchesHandSchedule: on a half-duplex switched
// fabric the flat (star) and plain ring broadcasts to p-1 receivers are
// both p-1 fully serialized hops — (p-1)·(α+βs) — while a binomial tree
// overlaps subtree forwarding and must finish strictly sooner for p = 4.
func TestPredictBroadcastMatchesHandSchedule(t *testing.T) {
	const alpha, beta = 1e-5, 1e-9
	const p, bytes = 4, 1 << 16
	hop := alpha + beta*float64(bytes)

	flat, err := PredictBroadcast(FlatBroadcast, p, bytes, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := PredictBroadcast(RingBroadcast, p, bytes, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(p-1) * hop
	if math.Abs(flat-want) > 1e-12 || math.Abs(ring-want) > 1e-12 {
		t.Fatalf("flat %v ring %v, want %v (= 3 serialized hops)", flat, ring, want)
	}

	tree, err := PredictBroadcast(TreeBroadcast, p, bytes, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	if tree >= flat {
		t.Fatalf("tree %v not faster than flat %v at p=4", tree, flat)
	}

	pipe, err := PredictBroadcast(PipelinedRingBroadcast, p, bytes, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	if pipe <= 0 || pipe >= want*2 {
		t.Fatalf("pipelined ring %v outside sane bounds (0, %v)", pipe, want*2)
	}
}

// TestPredictBroadcastValidates: invalid shapes and parameters error
// instead of producing a silent nonsense schedule.
func TestPredictBroadcastValidates(t *testing.T) {
	if _, err := PredictBroadcast(FlatBroadcast, 0, 10, 1e-6, 1e-9); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := PredictBroadcast(FlatBroadcast, 4, -1, 1e-6, 1e-9); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := PredictBroadcast(FlatBroadcast, 4, 10, -1e-6, 1e-9); err == nil {
		t.Fatal("negative α accepted")
	}
	if one, err := PredictBroadcast(TreeBroadcast, 1, 10, 1e-6, 1e-9); err != nil || one != 0 {
		t.Fatalf("single-rank broadcast should cost nothing: %v, %v", one, err)
	}
}
