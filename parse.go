package hetgrid

import (
	"fmt"
	"strings"
)

// This file gives the package's enums a parse side, so BroadcastKind,
// Strategy, Kernel and Numerics all round-trip through String()/Parse*:
// for every valid value v, Parse*(v.String()) == v. The CLI tools build
// their flag handling on these.

func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyHeuristic:
		return "heuristic"
	case StrategyExact:
		return "exact"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseBroadcast maps a broadcast-algorithm name to its constant.
// Accepted: auto, flat (or star), ring, pipeline (or segring), tree.
func ParseBroadcast(s string) (BroadcastKind, error) {
	switch strings.ToLower(s) {
	case "auto":
		return BroadcastAuto, nil
	case "flat", "star":
		return FlatBroadcast, nil
	case "ring":
		return RingBroadcast, nil
	case "pipeline", "segring":
		return PipelinedRingBroadcast, nil
	case "tree":
		return TreeBroadcast, nil
	default:
		return 0, fmt.Errorf("hetgrid: unknown broadcast %q (want auto, flat, ring, pipeline or tree)", s)
	}
}

// ParseKernel maps a kernel name to its constant. Accepted: matmul (or
// mm), lu, qr, cholesky (or chol).
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(s) {
	case "matmul", "mm":
		return MatMul, nil
	case "lu":
		return LU, nil
	case "qr":
		return QR, nil
	case "cholesky", "chol":
		return Cholesky, nil
	default:
		return 0, fmt.Errorf("hetgrid: unknown kernel %q (want matmul, lu, qr or cholesky)", s)
	}
}

// ParseNumerics maps a numerics-mode name to its constant. Accepted:
// strict, fast.
func ParseNumerics(s string) (Numerics, error) {
	switch strings.ToLower(s) {
	case "strict":
		return Strict, nil
	case "fast":
		return Fast, nil
	default:
		return 0, fmt.Errorf("hetgrid: unknown numerics %q (want strict or fast)", s)
	}
}

// ParseStrategy maps a strategy name to its constant. Accepted: auto,
// heuristic, exact.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "auto":
		return StrategyAuto, nil
	case "heuristic":
		return StrategyHeuristic, nil
	case "exact":
		return StrategyExact, nil
	default:
		return 0, fmt.Errorf("hetgrid: unknown strategy %q (want auto, heuristic or exact)", s)
	}
}
