package hetgrid

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"hetgrid/internal/adapt"
	"hetgrid/internal/matrix"
)

// driftSeeds is the property-test seed count (shrunk under -short).
func driftSeeds() int {
	if testing.Short() {
		return 25
	}
	return 200
}

// driftTrace is a recorded observation stream: per-window busy deltas for
// every rank, as the step hook would deliver them to rank 0.
type driftTrace struct {
	times   []float64   // planned baseline
	busy    [][]float64 // busy[w][r]: window w's busy delta of rank r
	windows []int       // step each window closed at
	dist    Distribution
	wl      adapt.Workload
	pol     DriftPolicy
}

// decisions replays the trace through a fresh detector and records every
// drift decision exactly the way the execution's rank-0 hook does: the
// observation verdict, and on trigger the full migration-cost evaluation.
func (tr *driftTrace) decisions(t *testing.T) []string {
	t.Helper()
	det, err := adapt.NewDetector(tr.times, tr.pol.detectorPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	last := 0
	for w, delta := range tr.busy {
		k := tr.windows[w]
		seg := adapt.SegmentWork(tr.dist, tr.wl, last, k)
		last = k
		o, err := det.Observe(delta, seg)
		if err != nil {
			t.Fatal(err)
		}
		line := fmt.Sprintf("w%d dev=%.12g hot=%d trigger=%v", w, o.Deviation, o.Hot, o.Trigger)
		if o.Trigger {
			dec, err := evaluateDrift(tr.dist, det.EstimatedTimes(), tr.wl, k, tr.pol)
			if err != nil {
				t.Fatal(err)
			}
			line += fmt.Sprintf(" redistribute=%v moved=%d stay=%.12g move=%.12g",
				dec.Redistribute, dec.MovedBlocks, dec.StayCost, dec.MoveCost)
			if dec.Redistribute {
				line += " dist=" + fmt.Sprint(ownerMap(dec.NewDist))
				det.Rebase(det.EstimatedTimes())
			}
		}
		out = append(out, line)
	}
	return out
}

// ownerMap flattens a distribution to its block→rank assignment.
func ownerMap(d Distribution) []int {
	nbr, nbc := d.Blocks()
	_, q := d.Dims()
	out := make([]int, 0, nbr*nbc)
	for i := 0; i < nbr; i++ {
		for j := 0; j < nbc; j++ {
			pi, pj := d.Owner(i, j)
			out = append(out, pi*q+pj)
		}
	}
	return out
}

// TestDriftDecisionsDeterministicAcrossWorkers: for 200 seeded random
// observation traces, replaying the identical trace concurrently on 1, 2
// and 4 worker goroutines yields bit-identical drift decisions — detection,
// evaluation and the replanned block layout are pure functions of the
// trace. Run under -race this also proves the replay shares no hidden
// mutable state.
func TestDriftDecisionsDeterministicAcrossWorkers(t *testing.T) {
	kernels := []struct {
		k  Kernel
		wl adapt.Workload
	}{{MatMul, adapt.WorkEveryStep}, {LU, adapt.WorkTrailing}, {Cholesky, adapt.WorkTrailingLower}}
	for seed := 0; seed < driftSeeds(); seed++ {
		rng := rand.New(rand.NewSource(int64(9000 + seed)))
		kc := kernels[seed%len(kernels)]
		nb := 6 + rng.Intn(4)
		d, err := Uniform(2, 2, nb, nb)
		if err != nil {
			t.Fatal(err)
		}
		tr := &driftTrace{
			times: []float64{1, 1, 1, 1},
			dist:  d,
			wl:    kc.wl,
			pol:   driftTestPolicy(nil),
		}
		// Random walk of per-rank busy deltas, with one rank drifting.
		slow := rng.Intn(4)
		for w, k := 0, 2; k < nb; w, k = w+1, k+2 {
			delta := make([]float64, 4)
			for r := range delta {
				delta[r] = 1e-4 * (1 + 0.3*rng.Float64())
				if r == slow {
					delta[r] *= 1 + 10*rng.Float64()
				}
			}
			tr.windows = append(tr.windows, k)
			tr.busy = append(tr.busy, delta)
			_ = w
		}
		want := tr.decisions(t)
		for _, workers := range []int{1, 2, 4} {
			got := make([][]string, workers)
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = tr.decisions(t)
				}(i)
			}
			wg.Wait()
			for i := range got {
				if !reflect.DeepEqual(got[i], want) {
					t.Fatalf("seed %d: worker %d/%d diverged:\n got %v\nwant %v",
						seed, i, workers, got[i], want)
				}
			}
		}
	}
}

// TestDriftMigratedRunsBitIdentical: 200 seeded wrong-baseline runs across
// all four kernels. Every run must return results bit-identical to the
// fault-free serial replay — whether or not it migrated — and the strongly
// skewed baseline must make the vast majority migrate.
func TestDriftMigratedRunsBitIdentical(t *testing.T) {
	seeds := driftSeeds()
	migrated := 0
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(7000 + seed)))
		nb := 6 + rng.Intn(3)
		r := 2 + rng.Intn(2)
		kern := []Kernel{LU, MatMul, Cholesky, QR}[seed%4]
		d, times := skewDist(t, 2, 2, nb, kern, 8)
		pol := driftTestPolicy(times)
		n := nb * r

		var stats *ExecStats
		var err error
		var same bool
		switch kern {
		case LU:
			a := matrix.RandomWellConditioned(n, rng)
			var serial, got *Matrix
			serial, _, err = FactorLU(d, a)
			if err == nil {
				got, stats, err = DistributedFactorLU(d, a, r, WithDriftRebalance(pol))
				same = err == nil && got.Equal(serial)
			}
		case MatMul:
			a, b := matrix.Random(n, n, rng), matrix.Random(n, n, rng)
			var serial, got *Matrix
			serial, err = Multiply(d, a, b)
			if err == nil {
				got, stats, err = DistributedMultiply(d, a, b, r, WithDriftRebalance(pol))
				same = err == nil && got.Equal(serial)
			}
		case Cholesky:
			spd := matrix.RandomSPD(n, rng)
			var serial, got *Matrix
			serial, _, err = FactorCholesky(d, spd)
			if err == nil {
				got, stats, err = DistributedFactorCholesky(d, spd, r, WithDriftRebalance(pol))
				same = err == nil && got.Equal(serial)
			}
		case QR:
			a := matrix.Random(n, n, rng)
			var serial, got *QRFactorization
			serial, err = FactorQR(d, a)
			if err == nil {
				got, stats, err = DistributedFactorQR(d, a, r, WithDriftRebalance(pol))
				same = err == nil && got.R().Equal(serial.R()) && got.Q(r).Equal(serial.Q(r))
			}
		}
		if err != nil {
			t.Fatalf("seed %d (%v, nb=%d r=%d): %v", seed, kern, nb, r, err)
		}
		if !same {
			t.Fatalf("seed %d (%v, nb=%d r=%d): migrated run differs from the serial replay", seed, kern, nb, r)
		}
		if stats.Drift == nil {
			t.Fatalf("seed %d: missing drift stats", seed)
		}
		migrated += stats.Drift.Migrations
	}
	if migrated < seeds/2 {
		t.Fatalf("only %d/%d wrong-baseline runs migrated", migrated, seeds)
	}
}
