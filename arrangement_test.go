package hetgrid

import (
	"math"
	"testing"
)

func TestBalanceArrangementExact(t *testing.T) {
	plan, err := BalanceArrangement([][]float64{{1, 2}, {3, 5}}, StrategyExact)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Objective()-2) > 1e-9 {
		t.Fatalf("objective %v, want 2", plan.Objective())
	}
	// The arrangement must be preserved verbatim (no re-sorting).
	arr := plan.Arrangement()
	if arr.T[1][1] != 5 || arr.T[0][1] != 2 {
		t.Fatalf("arrangement mutated:\n%s", arr)
	}
}

func TestBalanceArrangementHeuristic(t *testing.T) {
	plan, err := BalanceArrangement([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, StrategyHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's first-step objective on this arrangement.
	if math.Abs(plan.Objective()-2.4322) > 5e-4 {
		t.Fatalf("objective %v, want 2.4322", plan.Objective())
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceArrangementRank1FastPath(t *testing.T) {
	plan, err := BalanceArrangement([][]float64{{1, 2}, {3, 6}}, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.MeanWorkload()-1) > 1e-12 {
		t.Fatalf("rank-1 arrangement mean workload %v", plan.MeanWorkload())
	}
}

func TestBalanceArrangementKeepsMachinePositions(t *testing.T) {
	// A deliberately non-sorted arrangement (fast machine bottom-right)
	// must stay where it is — the point of the fixed-arrangement API.
	rows := [][]float64{{5, 3}, {2, 1}}
	plan, err := BalanceArrangement(rows, StrategyExact)
	if err != nil {
		t.Fatal(err)
	}
	arr := plan.Arrangement()
	for i := range rows {
		for j := range rows[i] {
			if arr.T[i][j] != rows[i][j] {
				t.Fatalf("position (%d,%d) changed", i, j)
			}
		}
	}
	// And the free Balance (which may re-sort) does at least as well.
	free, err := Balance([]float64{5, 3, 2, 1}, 2, 2, StrategyExact)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Objective() > free.Objective()+1e-9 {
		t.Fatal("fixed arrangement beat the free optimum")
	}
}

func TestBalanceArrangementErrors(t *testing.T) {
	if _, err := BalanceArrangement(nil, StrategyExact); err == nil {
		t.Fatal("empty arrangement accepted")
	}
	if _, err := BalanceArrangement([][]float64{{1, -2}}, StrategyExact); err == nil {
		t.Fatal("negative cycle-time accepted")
	}
	if _, err := BalanceArrangement([][]float64{{1, 2}}, Strategy(9)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
