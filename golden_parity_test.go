package hetgrid

// Golden parity: testdata/golden_plans.json snapshots the outputs of
// Balance, BalanceArrangement, ChooseGrid and adapt.ReplanSurvivors over
// 50 seeded random grids as they were BEFORE planning was unified into
// internal/plan. Every float is stored as raw IEEE-754 bits, so the test
// pins the refactored pipeline bit for bit — any drift in solver dispatch,
// arrangement handling or panel rounding fails loudly.

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"strconv"
	"testing"

	"hetgrid/internal/adapt"
	"hetgrid/internal/distribution"
)

func bitsOf(v float64) string { return strconv.FormatUint(math.Float64bits(v), 16) }

func bitsOfSlice(v []float64) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = bitsOf(x)
	}
	return out
}

func bitsOfMatrix(m [][]float64) [][]string {
	out := make([][]string, len(m))
	for i, row := range m {
		out[i] = bitsOfSlice(row)
	}
	return out
}

type goldenCase struct {
	ID       int       `json:"id"`
	Mode     string    `json:"mode"`
	Times    []float64 `json:"times"`
	P        int       `json:"p,omitempty"`
	Q        int       `json:"q,omitempty"`
	Strategy string    `json:"strategy,omitempty"`
	Subset   bool      `json:"allow_subset,omitempty"`
	Aspect   float64   `json:"min_aspect,omitempty"`
	Nbr      int       `json:"nbr,omitempty"`
	Nbc      int       `json:"nbc,omitempty"`
	Kernel   string    `json:"kernel,omitempty"`

	Out goldenOut `json:"out"`
}

type goldenOut struct {
	P          int          `json:"p"`
	Q          int          `json:"q"`
	T          [][]string   `json:"t"`
	R          []string     `json:"r"`
	C          []string     `json:"c"`
	Objective  string       `json:"objective"`
	Iterations int          `json:"iterations,omitempty"`
	Converged  bool         `json:"converged,omitempty"`
	Tau        string       `json:"tau,omitempty"`
	Selected   []int        `json:"selected,omitempty"`
	Candidates int          `json:"candidates,omitempty"`
	Panel      *goldenPanel `json:"panel,omitempty"`
}

type goldenPanel struct {
	Bp        int   `json:"bp"`
	Bq        int   `json:"bq"`
	RowCounts []int `json:"row_counts"`
	ColCounts []int `json:"col_counts"`
	RowOrder  []int `json:"row_order"`
	ColOrder  []int `json:"col_order"`
}

func loadGoldenCases(t *testing.T) []goldenCase {
	t.Helper()
	blob, err := os.ReadFile("testdata/golden_plans.json")
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Cases []goldenCase `json:"cases"`
	}
	if err := json.Unmarshal(blob, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Cases) != 50 {
		t.Fatalf("golden file has %d cases, want 50", len(file.Cases))
	}
	return file.Cases
}

func checkPlanParity(t *testing.T, gc goldenCase, p *Plan) {
	t.Helper()
	arr := p.Arrangement()
	if arr.P != gc.Out.P || arr.Q != gc.Out.Q {
		t.Fatalf("case %d: grid %d×%d, golden %d×%d", gc.ID, arr.P, arr.Q, gc.Out.P, gc.Out.Q)
	}
	if got := bitsOfMatrix(arr.T); !reflect.DeepEqual(got, gc.Out.T) {
		t.Fatalf("case %d: arrangement drifted: %v vs %v", gc.ID, got, gc.Out.T)
	}
	if got := bitsOfSlice(p.RowShares()); !reflect.DeepEqual(got, gc.Out.R) {
		t.Fatalf("case %d: row shares drifted: %v vs %v", gc.ID, got, gc.Out.R)
	}
	if got := bitsOfSlice(p.ColShares()); !reflect.DeepEqual(got, gc.Out.C) {
		t.Fatalf("case %d: col shares drifted: %v vs %v", gc.ID, got, gc.Out.C)
	}
	if got := bitsOf(p.Objective()); got != gc.Out.Objective {
		t.Fatalf("case %d: objective drifted: %s vs %s", gc.ID, got, gc.Out.Objective)
	}
	if p.Iterations != gc.Out.Iterations || p.Converged != gc.Out.Converged {
		t.Fatalf("case %d: convergence record drifted: %d/%v vs %d/%v",
			gc.ID, p.Iterations, p.Converged, gc.Out.Iterations, gc.Out.Converged)
	}
	if got := bitsOf(p.Tau); gc.Out.Tau != "" && got != gc.Out.Tau {
		t.Fatalf("case %d: tau drifted: %s vs %s", gc.ID, got, gc.Out.Tau)
	}
}

// TestGoldenPlanParity re-solves every golden case through the refactored
// public API (which now routes through internal/plan) and demands
// bit-identical plans.
func TestGoldenPlanParity(t *testing.T) {
	for _, gc := range loadGoldenCases(t) {
		switch gc.Mode {
		case "balance":
			strat, err := ParseStrategy(gc.Strategy)
			if err != nil {
				t.Fatalf("case %d: %v", gc.ID, err)
			}
			p, err := Balance(gc.Times, gc.P, gc.Q, strat)
			if err != nil {
				t.Fatalf("case %d: %v", gc.ID, err)
			}
			checkPlanParity(t, gc, p)
		case "arrangement":
			strat, err := ParseStrategy(gc.Strategy)
			if err != nil {
				t.Fatalf("case %d: %v", gc.ID, err)
			}
			rows := make([][]float64, gc.P)
			for i := 0; i < gc.P; i++ {
				rows[i] = gc.Times[i*gc.Q : (i+1)*gc.Q]
			}
			p, err := BalanceArrangement(rows, strat)
			if err != nil {
				t.Fatalf("case %d: %v", gc.ID, err)
			}
			checkPlanParity(t, gc, p)
		case "choosegrid":
			p, choice, err := ChooseGrid(gc.Times, gc.Subset, gc.Aspect)
			if err != nil {
				t.Fatalf("case %d: %v", gc.ID, err)
			}
			checkPlanParity(t, gc, p)
			if choice.P != gc.Out.P || choice.Q != gc.Out.Q ||
				!reflect.DeepEqual(choice.Selected, gc.Out.Selected) ||
				choice.Candidates != gc.Out.Candidates {
				t.Fatalf("case %d: grid choice drifted: %+v vs %+v", gc.ID, choice, gc.Out)
			}
		case "replan":
			rowOrd, colOrd := distribution.Contiguous, distribution.Contiguous
			if gc.Kernel == "lu" {
				rowOrd, colOrd = distribution.Interleaved, distribution.Interleaved
			}
			sp, err := adapt.ReplanSurvivors(gc.Times, gc.Nbr, gc.Nbc, rowOrd, colOrd)
			if err != nil {
				t.Fatalf("case %d: %v", gc.ID, err)
			}
			sol := sp.Shape.Solution
			if sp.P != gc.Out.P || sp.Q != gc.Out.Q {
				t.Fatalf("case %d: survivor grid %d×%d, golden %d×%d", gc.ID, sp.P, sp.Q, gc.Out.P, gc.Out.Q)
			}
			if !reflect.DeepEqual(sp.Selected, gc.Out.Selected) || sp.Shape.Candidates != gc.Out.Candidates {
				t.Fatalf("case %d: survivor selection drifted", gc.ID)
			}
			if got := bitsOfMatrix(sol.Arr.T); !reflect.DeepEqual(got, gc.Out.T) {
				t.Fatalf("case %d: survivor arrangement drifted", gc.ID)
			}
			if got := bitsOfSlice(sol.R); !reflect.DeepEqual(got, gc.Out.R) {
				t.Fatalf("case %d: survivor row shares drifted", gc.ID)
			}
			if got := bitsOfSlice(sol.C); !reflect.DeepEqual(got, gc.Out.C) {
				t.Fatalf("case %d: survivor col shares drifted", gc.ID)
			}
			if got := bitsOf(sol.Objective()); got != gc.Out.Objective {
				t.Fatalf("case %d: survivor objective drifted", gc.ID)
			}
			gp := gc.Out.Panel
			if gp == nil {
				t.Fatalf("case %d: golden replan case lacks a panel", gc.ID)
			}
			// The survivor distribution is a cyclic tiling of the panel;
			// parity of the panel geometry pins the whole distribution.
			got := survivorPanel(t, sp, gc)
			if !reflect.DeepEqual(got, gp) {
				t.Fatalf("case %d: survivor panel drifted: %+v vs %+v", gc.ID, got, gp)
			}
		default:
			t.Fatalf("case %d: unknown golden mode %q", gc.ID, gc.Mode)
		}
	}
}

// survivorPanel reads the panel geometry back out of the survivor
// distribution's owner maps (the panel repeats cyclically, so the first
// period is the panel).
func survivorPanel(t *testing.T, sp *adapt.SurvivorPlan, gc goldenCase) *goldenPanel {
	t.Helper()
	prod, ok := sp.Dist.(*distribution.Product)
	if !ok {
		t.Fatalf("case %d: survivor distribution is %T, want *distribution.Product", gc.ID, sp.Dist)
	}
	gp := gc.Out.Panel
	out := &goldenPanel{
		Bp:        gp.Bp,
		Bq:        gp.Bq,
		RowCounts: make([]int, sp.P),
		ColCounts: make([]int, sp.Q),
	}
	out.RowOrder = append([]int(nil), prod.RowOwner[:gp.Bp]...)
	out.ColOrder = append([]int(nil), prod.ColOwner[:gp.Bq]...)
	for _, r := range out.RowOrder {
		out.RowCounts[r]++
	}
	for _, c := range out.ColOrder {
		out.ColCounts[c]++
	}
	// Verify cyclicity: the owner maps must be the panel repeated.
	for i, r := range prod.RowOwner {
		if r != out.RowOrder[i%gp.Bp] {
			t.Fatalf("case %d: row owners not panel-cyclic at %d", gc.ID, i)
		}
	}
	for j, c := range prod.ColOwner {
		if c != out.ColOrder[j%gp.Bq] {
			t.Fatalf("case %d: col owners not panel-cyclic at %d", gc.ID, j)
		}
	}
	return out
}
