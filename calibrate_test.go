package hetgrid

import (
	"testing"
	"time"
)

func TestCalibrateSmoke(t *testing.T) {
	cal, err := Calibrate(16, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cal.SecondsPerUpdate <= 0 || cal.Updates <= 0 {
		t.Fatalf("calibration implausible: %+v", cal)
	}
	if cal.BlockSize != 16 {
		t.Fatalf("block size %d", cal.BlockSize)
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate(0, time.Millisecond); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestCycleTimes(t *testing.T) {
	got, err := CycleTimes([]float64{2e-6, 1e-6, 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 5}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("CycleTimes = %v", got)
		}
	}
	if _, err := CycleTimes(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := CycleTimes([]float64{1, 0}); err == nil {
		t.Fatal("zero measurement accepted")
	}
}

func TestCalibrateFeedsBalance(t *testing.T) {
	// End-to-end: measured times → cycle-times → plan.
	times, err := CycleTimes([]float64{1.1e-6, 2.3e-6, 3.4e-6, 5.2e-6})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Balance(times, 2, 2, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}
