package hetgrid

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"hetgrid/internal/matrix"
)

// TestWithTransportMatchesDefault: injecting the exported mem fabric
// explicitly is indistinguishable from the default — same factors, bit for
// bit.
func TestWithTransportMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const r = 2
	a := matrix.RandomWellConditioned(12, rng)
	clean, _, err := DistributedFactorLU(d, a, r)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := DistributedFactorLU(d, a, r, WithTransport(NewMemTransport(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(clean) {
		t.Fatal("injected mem fabric changed the factors")
	}
	if stats.Messages == 0 {
		t.Fatal("stats lost the traffic of the injected fabric")
	}
}

// TestWithTransportFactoryBuildsPerAttempt: the factory sees the attempt's
// rank count and its fabric carries the run.
func TestWithTransportFactoryBuildsPerAttempt(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	d, err := Uniform(2, 3, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomWellConditioned(12, rng)
	var sizes []int
	got, _, err := DistributedFactorLU(d, a, 2, WithTransportFactory(func(ranks int) (Transport, error) {
		sizes = append(sizes, ranks)
		return NewMemTransport(ranks), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 || sizes[0] != 6 {
		t.Fatalf("factory invocations %v, want one for 6 ranks", sizes)
	}
	clean, _, err := DistributedFactorLU(d, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(clean) {
		t.Fatal("factory-built fabric changed the factors")
	}
}

// TestFixedTransportRejectsRecovery: a fixed fabric instance spans a fixed
// rank count, so combining it with crash recovery (which replans a smaller
// world) must fail loudly, pointing at WithTransportFactory.
func TestFixedTransportRejectsRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomWellConditioned(12, rng)
	_, _, err = DistributedFactorLU(d, a, 2,
		WithTransport(NewMemTransport(4)),
		WithFaults(FaultOptions{
			Crashes: []CrashPoint{{Rank: 3, Step: 2}},
			Recover: true,
		}))
	if err == nil {
		t.Fatal("fixed transport + recovery accepted")
	}
	if !strings.Contains(err.Error(), "WithTransportFactory") {
		t.Fatalf("error does not point at the factory option: %v", err)
	}
}

// TestTransportFactoryRecovery: with a factory the recovery path works —
// the replanned (smaller) attempt gets a fresh fabric sized to the
// survivors, and the result stays bit-identical to the fault-free run.
func TestTransportFactoryRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const r = 2
	a := matrix.RandomWellConditioned(12, rng)
	clean, _, err := DistributedFactorLU(d, a, r)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	got, stats, err := DistributedFactorLU(d, a, r,
		WithTransportFactory(func(ranks int) (Transport, error) {
			sizes = append(sizes, ranks)
			return NewMemTransport(ranks), nil
		}),
		WithFaults(FaultOptions{
			Crashes:     []CrashPoint{{Rank: 3, Step: 2}},
			Recover:     true,
			RecvTimeout: 50 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(clean) {
		t.Fatal("recovered factors differ from the fault-free run")
	}
	if stats.Faults == nil || stats.Faults.Recoveries != 1 {
		t.Fatalf("expected one recovery: %+v", stats.Faults)
	}
	if len(sizes) < 2 || sizes[0] != 4 || sizes[len(sizes)-1] >= 4 {
		t.Fatalf("factory sizes %v: want 4 ranks first, then a smaller survivor world", sizes)
	}
}
