package hetgrid

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hetgrid/internal/matrix"
)

// driftTestPolicy is an eager policy for tests: short windows, no patience
// beyond one hot window, near-free migrations under a loopback-scale net
// model, so genuine drift migrates quickly and deterministically.
func driftTestPolicy(times []float64) DriftPolicy {
	return DriftPolicy{
		Window:        2,
		Alpha:         1,
		Threshold:     0.5,
		Patience:      1,
		CoolDown:      1,
		Hysteresis:    1.01,
		MaxMigrations: 1,
		Times:         times,
		Net:           SimOptions{Latency: 1e-12, ByteTime: 1e-15},
	}
}

// skewDist plans a distribution for cycle-times that declare rank p*q-1
// `speedup`× faster than the rest — the "wrong baseline" of the drift
// tests: the actual ranks are equal-speed, so the detector sees sustained
// drift away from the planned shares without any wall-clock dependence.
func skewDist(t *testing.T, p, q, nb int, k Kernel, speedup float64) (Distribution, []float64) {
	t.Helper()
	rows := make([][]float64, p)
	flat := make([]float64, 0, p*q)
	for i := 0; i < p; i++ {
		rows[i] = make([]float64, q)
		for j := 0; j < q; j++ {
			rows[i][j] = 1
			if i == p-1 && j == q-1 {
				rows[i][j] = 1 / speedup
			}
			flat = append(flat, rows[i][j])
		}
	}
	plan, err := BalanceArrangement(rows, StrategyHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := plan.BestPanel(nb, nb, k)
	if err != nil {
		t.Fatal(err)
	}
	d, err := lay.Distribute(nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	return d, flat
}

// TestDriftWrongBaselineMigratesLU: a layout planned for an 8×-fast corner
// rank runs on actually-equal ranks. The detector must observe the drift,
// migrate onto a balanced layout mid-LU, and still return a result
// bit-identical to the serial factorization.
func TestDriftWrongBaselineMigratesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	const nb, r = 10, 3
	d, times := skewDist(t, 2, 2, nb, LU, 8)
	a := matrix.RandomWellConditioned(nb*r, rng)
	serial, _, err := FactorLU(d, a)
	if err != nil {
		t.Fatal(err)
	}
	packed, stats, err := DistributedFactorLU(d, a, r, WithDriftRebalance(driftTestPolicy(times)))
	if err != nil {
		t.Fatal(err)
	}
	if !packed.Equal(serial) {
		t.Fatal("drift-migrated LU differs from the serial factorization")
	}
	ds := stats.Drift
	if ds == nil {
		t.Fatal("no drift stats on a drift-enabled run")
	}
	if ds.Migrations != 1 {
		t.Fatalf("expected exactly one migration, got %+v", ds)
	}
	if ds.Windows == 0 || ds.Evaluations == 0 || ds.MovedBlocks == 0 {
		t.Fatalf("implausible drift stats: %+v", ds)
	}
	if ds.PredictedSaving <= 0 {
		t.Fatalf("accepted a migration with no predicted saving: %+v", ds)
	}
}

// TestDriftSlowdownMigratesAndMatchesClean drives the drift loop with the
// real mechanism end to end: a deterministic slowdown injected on one rank
// inflates its busy-time gauge, the detector estimates the new cycle-times
// and migrates, and the result still matches the undisturbed run for every
// kernel.
func TestDriftSlowdownMigratesAndMatchesClean(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	const nb, r = 10, 4
	d, err := Uniform(2, 2, nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	slow := WithFaults(FaultOptions{
		Slowdowns: []SlowdownPoint{{Rank: 3, Step: 0, Factor: 32}},
	})
	drift := WithDriftRebalance(driftTestPolicy(nil))

	t.Run("lu", func(t *testing.T) {
		a := matrix.RandomWellConditioned(nb*r, rng)
		serial, _, err := FactorLU(d, a)
		if err != nil {
			t.Fatal(err)
		}
		packed, stats, err := DistributedFactorLU(d, a, r, slow, drift)
		if err != nil {
			t.Fatal(err)
		}
		if !packed.Equal(serial) {
			t.Fatal("drift-migrated LU differs from the serial factorization")
		}
		if stats.Drift == nil || stats.Drift.Migrations != 1 {
			t.Fatalf("expected one slowdown-driven migration: %+v", stats.Drift)
		}
		if stats.Faults == nil || stats.Faults.Slowdowns == 0 {
			t.Fatalf("slowdown point never activated: %+v", stats.Faults)
		}
	})
	t.Run("matmul", func(t *testing.T) {
		a, b := matrix.Random(nb*r, nb*r, rng), matrix.Random(nb*r, nb*r, rng)
		clean, _, err := DistributedMultiply(d, a, b, r)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := DistributedMultiply(d, a, b, r, slow, drift)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(clean) {
			t.Fatal("drift-migrated product differs from the undisturbed run")
		}
		if stats.Drift == nil || stats.Drift.Migrations != 1 {
			t.Fatalf("expected one slowdown-driven migration: %+v", stats.Drift)
		}
	})
	t.Run("cholesky", func(t *testing.T) {
		spd := matrix.RandomSPD(nb*r, rng)
		clean, _, err := DistributedFactorCholesky(d, spd, r)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := DistributedFactorCholesky(d, spd, r, slow, drift)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(clean) {
			t.Fatal("drift-migrated Cholesky differs from the undisturbed run")
		}
		if stats.Drift == nil || stats.Drift.Migrations != 1 {
			t.Fatalf("expected one slowdown-driven migration: %+v", stats.Drift)
		}
	})
	t.Run("qr", func(t *testing.T) {
		a := matrix.Random(nb*r, nb*r, rng)
		clean, _, err := DistributedFactorQR(d, a, r)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := DistributedFactorQR(d, a, r, slow, drift)
		if err != nil {
			t.Fatal(err)
		}
		if !got.R().Equal(clean.R()) {
			t.Fatal("drift-migrated R differs from the undisturbed run")
		}
		if !got.Q(r).Equal(clean.Q(r)) {
			t.Fatal("drift-migrated Q differs from the undisturbed run")
		}
		if stats.Drift == nil || stats.Drift.Migrations != 1 {
			t.Fatalf("expected one slowdown-driven migration: %+v", stats.Drift)
		}
	})
}

// TestDriftQuietOnBalancedRun: with a correct baseline and no injected
// drift, the detector observes windows but never migrates, and the result
// is untouched.
func TestDriftQuietOnBalancedRun(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	const nb, r = 8, 3
	d, err := Uniform(2, 2, nb, nb)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomWellConditioned(nb*r, rng)
	serial, _, err := FactorLU(d, a)
	if err != nil {
		t.Fatal(err)
	}
	// A lenient threshold keeps scheduler noise from arming the detector.
	pol := DriftPolicy{Window: 2, Threshold: 1e9}
	packed, stats, err := DistributedFactorLU(d, a, r, WithDriftRebalance(pol))
	if err != nil {
		t.Fatal(err)
	}
	if !packed.Equal(serial) {
		t.Fatal("drift-enabled balanced LU differs from the serial factorization")
	}
	ds := stats.Drift
	if ds == nil || ds.Windows == 0 {
		t.Fatalf("detector never observed a window: %+v", ds)
	}
	if ds.Migrations != 0 || ds.Evaluations != 0 || ds.MovedBlocks != 0 {
		t.Fatalf("balanced run migrated: %+v", ds)
	}
}

// TestDriftRequiresInProcessFabric: the migration decision is coordinated
// inside one process, so drift composes with neither an injected transport
// nor a transport factory.
func TestDriftRequiresInProcessFabric(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomWellConditioned(12, rng)
	_, _, err = DistributedFactorLU(d, a, 2,
		WithTransport(NewMemTransport(4)),
		WithDriftRebalance(DriftPolicy{}))
	if err == nil || !strings.Contains(err.Error(), "in-process fabric") {
		t.Fatalf("expected the in-process fabric guard, got %v", err)
	}
	_, _, err = DistributedFactorLU(d, a, 2,
		WithTransportFactory(func(ranks int) (Transport, error) { return NewMemTransport(ranks), nil }),
		WithDriftRebalance(DriftPolicy{}))
	if err == nil || !strings.Contains(err.Error(), "in-process fabric") {
		t.Fatalf("expected the in-process fabric guard, got %v", err)
	}
}

// TestDriftRejectsBadTimes: a Times vector that does not match the grid is
// rejected up front.
func TestDriftRejectsBadTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	d, err := Uniform(2, 2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.RandomWellConditioned(12, rng)
	_, _, err = DistributedFactorLU(d, a, 2,
		WithDriftRebalance(DriftPolicy{Times: []float64{1, 2, 3}}))
	if err == nil || !strings.Contains(err.Error(), "drift cycle-times") {
		t.Fatalf("expected a cycle-times length error, got %v", err)
	}
}

// TestParseDriftPolicyRoundTrip pins the flag grammar: every valid policy
// round-trips through its String form, and malformed terms are rejected
// with errors naming the offending key.
func TestParseDriftPolicyRoundTrip(t *testing.T) {
	policies := []DriftPolicy{
		{},
		{Window: 4, Alpha: 0.5, Threshold: 0.25, Patience: 2, CoolDown: 2, Hysteresis: 1.2, MaxMigrations: 2},
		{Window: 1, Alpha: 1, Threshold: 0.01, Hysteresis: 1.001, MaxMigrations: 7},
	}
	for _, p := range policies {
		back, err := ParseDriftPolicy(p.String())
		if err != nil {
			t.Fatalf("%q does not parse: %v", p.String(), err)
		}
		if !reflect.DeepEqual(back, p) {
			t.Fatalf("%q round-trips to %+v, want %+v", p.String(), back, p)
		}
	}
	got, err := ParseDriftPolicy(" window = 8 , MAX = 1 ")
	if err != nil || got.Window != 8 || got.MaxMigrations != 1 {
		t.Fatalf("padded form: %+v, %v", got, err)
	}
	for _, bad := range []string{"window", "window=", "window=-1", "alpha=1.5", "alpha=x",
		"threshold=NaN", "bogus=1", "=4", "window=4,,max=1"} {
		if _, err := ParseDriftPolicy(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
