package hetgrid

import (
	"fmt"
	"math/rand"
	"time"

	"hetgrid/internal/matrix"
)

// Calibration reports a host's measured block-update performance, the raw
// material for cycle-times: run it on every machine of an HNOW (or
// periodically on a multi-user machine) and feed the ratios to Balance.
type Calibration struct {
	// BlockSize is the r used for the measurement.
	BlockSize int
	// SecondsPerUpdate is the wall-clock seconds one r×r rank-r block
	// update (C += A·B) takes on this host.
	SecondsPerUpdate float64
	// Updates is how many updates were timed.
	Updates int
}

// Calibrate times r×r block updates on the calling machine. minDuration
// bounds the total measurement time (longer is steadier; 0 selects 50 ms).
// The result's SecondsPerUpdate values from different machines, divided by
// the smallest among them, are exactly the cycle-times the balancing
// strategies consume.
func Calibrate(blockSize int, minDuration time.Duration) (*Calibration, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("hetgrid: invalid block size %d", blockSize)
	}
	if minDuration <= 0 {
		minDuration = 50 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(1))
	a := matrix.Random(blockSize, blockSize, rng)
	b := matrix.Random(blockSize, blockSize, rng)
	c := matrix.New(blockSize, blockSize)
	// Warm up caches and let the runtime settle.
	c.AddMul(1, a, b)
	updates := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		c.AddMul(1, a, b)
		updates++
	}
	elapsed := time.Since(start).Seconds()
	if updates == 0 {
		return nil, fmt.Errorf("hetgrid: calibration performed no updates")
	}
	return &Calibration{
		BlockSize:        blockSize,
		SecondsPerUpdate: elapsed / float64(updates),
		Updates:          updates,
	}, nil
}

// CycleTimes normalizes a set of measured per-update times into
// cycle-times: the fastest machine gets 1 and the rest scale up. Returns an
// error on non-positive measurements.
func CycleTimes(secondsPerUpdate []float64) ([]float64, error) {
	if len(secondsPerUpdate) == 0 {
		return nil, fmt.Errorf("hetgrid: no measurements")
	}
	min := secondsPerUpdate[0]
	for _, s := range secondsPerUpdate {
		if !(s > 0) {
			return nil, fmt.Errorf("hetgrid: non-positive measurement %v", s)
		}
		if s < min {
			min = s
		}
	}
	out := make([]float64, len(secondsPerUpdate))
	for i, s := range secondsPerUpdate {
		out[i] = s / min
	}
	return out, nil
}
