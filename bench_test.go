package hetgrid

// One benchmark per table/figure of the paper's evaluation. Each bench both
// measures the cost of regenerating the artifact and reports the reproduced
// quantity as a custom metric, so `go test -bench=. -benchmem` doubles as a
// reproduction report:
//
//	Fig. 6  → BenchmarkFig6MeanWorkload   (metric mean_workload)
//	Fig. 7  → BenchmarkFig7Tau            (metric tau)
//	Fig. 8  → BenchmarkFig8Iterations     (metric iterations)
//	§4.4    → BenchmarkWorkedExample      (metric objective, paper: 2.5889)
//	§4.3    → BenchmarkExactVsHeuristic   (metric mean_ratio)
//	§3.1    → BenchmarkSimMM*             (metric speedup_vs_uniform)
//	§3.2    → BenchmarkSimLU*             (metric speedup_vs_uniform)
//	Fig. 1  → BenchmarkPanelBuild         (metric efficiency)

import (
	"math/rand"
	"testing"

	"hetgrid/internal/core"
	"hetgrid/internal/experiments"
)

// benchSweep runs the Figures 6-8 sweep once per iteration for a fixed n
// and reports the requested metric.
func benchSweep(b *testing.B, n int, metric string) {
	b.Helper()
	var last *experiments.HeuristicSweep
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunHeuristicSweep([]int{n}, 20, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = sweep
	}
	switch metric {
	case "mean_workload":
		b.ReportMetric(last.MeanWorkload[0], "mean_workload")
	case "tau":
		b.ReportMetric(last.Tau[0], "tau")
	case "iterations":
		b.ReportMetric(last.Iterations[0], "iterations")
	}
}

func BenchmarkFig6MeanWorkload_n4(b *testing.B) { benchSweep(b, 4, "mean_workload") }
func BenchmarkFig6MeanWorkload_n6(b *testing.B) { benchSweep(b, 6, "mean_workload") }
func BenchmarkFig7Tau_n4(b *testing.B)          { benchSweep(b, 4, "tau") }
func BenchmarkFig7Tau_n6(b *testing.B)          { benchSweep(b, 6, "tau") }
func BenchmarkFig8Iterations_n4(b *testing.B)   { benchSweep(b, 4, "iterations") }
func BenchmarkFig8Iterations_n6(b *testing.B)   { benchSweep(b, 6, "iterations") }

// BenchmarkWorkedExample reproduces the §4.4 worked example end to end;
// the reported objective must match the paper's 2.5889.
func BenchmarkWorkedExample(b *testing.B) {
	times := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	var obj float64
	for i := 0; i < b.N; i++ {
		res, err := core.SolveHeuristic(times, 3, 3, core.HeuristicOptions{})
		if err != nil {
			b.Fatal(err)
		}
		obj = res.Objective()
	}
	b.ReportMetric(obj, "objective")
}

// BenchmarkExactVsHeuristic measures the §4.3 exact solver enabling the
// quality table, reporting the mean heuristic/exact objective ratio.
func BenchmarkExactVsHeuristic_2x2(b *testing.B) { benchExact(b, 2, 2) }
func BenchmarkExactVsHeuristic_2x3(b *testing.B) { benchExact(b, 2, 3) }
func BenchmarkExactVsHeuristic_3x3(b *testing.B) { benchExact(b, 3, 3) }

func benchExact(b *testing.B, p, q int) {
	b.Helper()
	var ratio float64
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunExactComparison(p, q, 5, 17)
		if err != nil {
			b.Fatal(err)
		}
		ratio = cmp.MeanRatio
	}
	b.ReportMetric(ratio, "mean_ratio")
}

// Simulated matrix multiplication (abstract's headline experiment): one
// bench per distribution, each reporting its speedup over uniform.
func BenchmarkSimMMUniform(b *testing.B) { benchSimMM(b, "uniform") }
func BenchmarkSimMMPanel(b *testing.B)   { benchSimMM(b, "panel") }
func BenchmarkSimMMKL(b *testing.B)      { benchSimMM(b, "kl") }

func simSetup(b *testing.B, kernel Kernel) (*Plan, map[string]Distribution) {
	b.Helper()
	const nb = 24
	plan, err := Balance([]float64{1, 2, 3, 5}, 2, 2, StrategyExact)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := plan.BestPanel(12, 12, kernel)
	if err != nil {
		b.Fatal(err)
	}
	panel, err := layout.Distribute(nb, nb)
	if err != nil {
		b.Fatal(err)
	}
	uniform, err := Uniform(2, 2, nb, nb)
	if err != nil {
		b.Fatal(err)
	}
	kl, err := KalinovLastovetsky(plan, nb, nb)
	if err != nil {
		b.Fatal(err)
	}
	return plan, map[string]Distribution{"uniform": uniform, "panel": panel, "kl": kl}
}

func benchSimMM(b *testing.B, which string) {
	b.Helper()
	plan, dists := simSetup(b, MatMul)
	opts := SimOptions{Latency: 0.05, ByteTime: 1e-5, BlockBytes: 8 * 32 * 32}
	base, err := Simulate(MatMul, dists["uniform"], plan, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var mk float64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(MatMul, dists[which], plan, opts)
		if err != nil {
			b.Fatal(err)
		}
		mk = res.Makespan
	}
	b.ReportMetric(base.Makespan/mk, "speedup_vs_uniform")
	b.ReportMetric(mk, "makespan")
}

// Simulated LU: distribution comparison plus the §3.2.2 ordering ablation.
func BenchmarkSimLUUniform(b *testing.B) { benchSimLU(b, "uniform") }
func BenchmarkSimLUPanel(b *testing.B)   { benchSimLU(b, "panel") }
func BenchmarkSimLUKL(b *testing.B)      { benchSimLU(b, "kl") }

func benchSimLU(b *testing.B, which string) {
	b.Helper()
	plan, dists := simSetup(b, LU)
	opts := SimOptions{Latency: 0.05, ByteTime: 1e-5, BlockBytes: 8 * 32 * 32}
	base, err := Simulate(LU, dists["uniform"], plan, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var mk float64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(LU, dists[which], plan, opts)
		if err != nil {
			b.Fatal(err)
		}
		mk = res.Makespan
	}
	b.ReportMetric(base.Makespan/mk, "speedup_vs_uniform")
	b.ReportMetric(mk, "makespan")
}

// BenchmarkSimLUOrdering ablates the panel-column ordering (§3.2.2):
// interleaved (ABAABA) vs contiguous, reporting interleaved's gain.
func BenchmarkSimLUOrdering(b *testing.B) {
	const nb = 48
	plan, err := Balance([]float64{1, 2, 3, 5}, 2, 2, StrategyExact)
	if err != nil {
		b.Fatal(err)
	}
	inter, err := plan.Panel(8, 6, LU)
	if err != nil {
		b.Fatal(err)
	}
	contig, err := plan.Panel(8, 6, MatMul)
	if err != nil {
		b.Fatal(err)
	}
	di, err := inter.Distribute(nb, nb)
	if err != nil {
		b.Fatal(err)
	}
	dc, err := contig.Distribute(nb, nb)
	if err != nil {
		b.Fatal(err)
	}
	opts := SimOptions{Latency: 0.02, ByteTime: 1e-5, BlockBytes: 8 * 32 * 32}
	var gain float64
	for i := 0; i < b.N; i++ {
		ri, err := Simulate(LU, di, plan, opts)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := Simulate(LU, dc, plan, opts)
		if err != nil {
			b.Fatal(err)
		}
		gain = rc.Makespan / ri.Makespan
	}
	b.ReportMetric(gain, "interleave_gain")
}

// BenchmarkPanelBuild measures the Figure-1 artifact: planning plus
// best-panel construction for the rank-1 grid, reporting the (perfect)
// panel efficiency.
func BenchmarkPanelBuild(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		plan, err := Balance([]float64{1, 2, 3, 6}, 2, 2, StrategyAuto)
		if err != nil {
			b.Fatal(err)
		}
		layout, err := plan.BestPanel(8, 8, MatMul)
		if err != nil {
			b.Fatal(err)
		}
		eff = layout.Efficiency()
	}
	b.ReportMetric(eff, "efficiency")
}

// BenchmarkBalanceScaling tracks heuristic cost growth with grid size
// (the paper's closing remark on super-cubic flop growth).
func BenchmarkBalanceScaling(b *testing.B) {
	for _, n := range []int{4, 8, 12, 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			times := make([]float64, n*n)
			for i := range times {
				times[i] = 1 - rng.Float64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Balance(times, n, n, StrategyHeuristic); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return "n" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
